"""Workload models M1-M4 (Sec. 6.6).

A workload model turns per-update costs into a per-time-unit cost by
deciding how many updates hit each relation:

* **M1** — updates proportional to relation size: ``p`` percent of each
  relation's tuples change per time unit.
* **M2** — a constant ``u`` updates per relation.
* **M3** — a constant ``u`` updates per information source (spread evenly
  over the source's relations).
* **M4** — a constant ``u`` updates per rewriting (spread evenly over all
  its relations).

Each model yields a mapping ``relation -> expected update count``; the
aggregate cost of a rewriting is the count-weighted sum of the single-
update costs with that relation as the update origin.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Callable

from repro.errors import EvaluationError
from repro.misd.statistics import SpaceStatistics
from repro.qc.cost import CostAssessment, MaintenancePlan, ZERO_COST


class WorkloadModel(enum.Enum):
    """The four update-arrival models of Sec. 6.6."""

    M1_PROPORTIONAL = "M1"
    M2_PER_RELATION = "M2"
    M3_PER_SOURCE = "M3"
    M4_PER_REWRITING = "M4"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class WorkloadSpec:
    """A model plus its rate parameter (``p`` for M1, ``u`` otherwise)."""

    model: WorkloadModel
    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise EvaluationError("workload rate must be non-negative")

    def update_counts(
        self, plan: MaintenancePlan, statistics: SpaceStatistics
    ) -> dict[str, float]:
        """Expected updates per time unit for each relation in the plan."""
        relations = [
            name for group in plan.groups for name in group.relations
        ]
        if self.model is WorkloadModel.M1_PROPORTIONAL:
            return {
                name: self.rate * statistics.cardinality(name)
                for name in relations
            }
        if self.model is WorkloadModel.M2_PER_RELATION:
            return {name: self.rate for name in relations}
        if self.model is WorkloadModel.M3_PER_SOURCE:
            counts: dict[str, float] = {}
            for group in plan.groups:
                share = self.rate / len(group.relations)
                for name in group.relations:
                    counts[name] = share
            return counts
        # M4: constant per rewriting, spread equally over view elements.
        share = self.rate / len(relations) if relations else 0.0
        return {name: share for name in relations}

    def total_updates(
        self, plan: MaintenancePlan, statistics: SpaceStatistics
    ) -> float:
        return sum(self.update_counts(plan, statistics).values())


PlanBuilder = Callable[[str], MaintenancePlan]


def aggregate_cost(
    spec: WorkloadSpec,
    plan: MaintenancePlan,
    statistics: SpaceStatistics,
    single_update_cost: Callable[[MaintenancePlan], CostAssessment],
    replan: PlanBuilder | None = None,
) -> CostAssessment:
    """Workload-weighted total cost (the COST(Vi) of Sec. 6.6).

    ``single_update_cost`` prices one update given a plan rooted at the
    updated relation; ``replan`` rebuilds the itinerary for a different
    update origin (defaults to re-rooting the given plan).
    """
    builder = replan if replan is not None else _reroot_builder(plan)
    total = ZERO_COST
    for relation, count in spec.update_counts(plan, statistics).items():
        if count <= 0:
            continue
        total = total.plus(single_update_cost(builder(relation)).scaled(count))
    return total


def _reroot_builder(plan: MaintenancePlan) -> PlanBuilder:
    """Re-root ``plan`` so a different relation is the update origin."""

    def build(updated_relation: str) -> MaintenancePlan:
        if updated_relation == plan.updated_relation:
            return plan
        groups = list(plan.groups)
        origin_index = next(
            (
                i
                for i, group in enumerate(groups)
                if updated_relation in group.relations
            ),
            None,
        )
        if origin_index is None:
            raise EvaluationError(
                f"relation {updated_relation!r} is not in the plan"
            )
        reordered = [groups[origin_index]] + (
            groups[:origin_index] + groups[origin_index + 1 :]
        )
        first = reordered[0]
        relations = list(first.relations)
        relations.remove(updated_relation)
        relations.insert(0, updated_relation)
        reordered[0] = type(first)(first.source, tuple(relations))
        return MaintenancePlan(tuple(reordered), updated_relation)

    return build
