"""Search-space pruning heuristics (Sec. 7.6).

The full QC evaluation prices every candidate.  The paper's experiments
suggest cheaper selection rules that usually agree with the exhaustive
ranking; each is implemented as a key function over rewritings so callers
can sort, pick, or combine them, and the heuristics benchmark measures how
often each agrees with the QC-Model's exhaustive choice:

* **fewest sources** — minimize the number of ISs referenced (Exps. 2/5),
* **fewest relations** — minimize the FROM list (workload models M1/M2),
* **smallest relations** — minimize total referenced cardinality (M1),
* **closest size** — replacement relation closest in cardinality to the
  relation it replaces (Exp. 4),
* **fewest clauses** — minimize joins/primitive clauses (M4 tie-breaker).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import EvaluationError, UnknownRelationError
from repro.misd.mkb import MetaKnowledgeBase
from repro.misd.statistics import SpaceStatistics
from repro.sync.rewriting import ReplaceRelationMove, Rewriting

HeuristicKey = Callable[[Rewriting], float]


def fewest_sources_key(mkb: MetaKnowledgeBase) -> HeuristicKey:
    """Number of distinct ISs the rewriting draws from (lower = better)."""

    def key(rewriting: Rewriting) -> float:
        sources = set()
        for name in rewriting.view.relation_names:
            try:
                sources.add(mkb.owner(name))
            except UnknownRelationError:
                sources.add(f"?{name}")
        return float(len(sources))

    return key


def fewest_relations_key() -> HeuristicKey:
    """Length of the FROM list (lower = better)."""
    return lambda rewriting: float(len(rewriting.view.from_))


def smallest_relations_key(statistics: SpaceStatistics) -> HeuristicKey:
    """Total cardinality of referenced relations (lower = better)."""

    def key(rewriting: Rewriting) -> float:
        return float(
            sum(
                statistics.cardinality(name)
                for name in rewriting.view.relation_names
            )
        )

    return key


def closest_size_key(statistics: SpaceStatistics) -> HeuristicKey:
    """Cardinality distance between replaced and replacement relations.

    Rewritings without replacement moves score 0 (perfectly "close").
    """

    def key(rewriting: Rewriting) -> float:
        distance = 0.0
        for move in rewriting.moves:
            if isinstance(move, ReplaceRelationMove):
                distance += abs(
                    statistics.cardinality(move.new_relation)
                    - statistics.cardinality(move.old_relation)
                )
        return distance

    return key


def fewest_clauses_key() -> HeuristicKey:
    """Number of WHERE conjuncts (lower = better; M4's final tie-breaker)."""
    return lambda rewriting: float(len(rewriting.view.where))


def pick_by_heuristics(
    rewritings: Sequence[Rewriting],
    keys: Sequence[HeuristicKey],
) -> Rewriting:
    """Lexicographic selection: earlier keys dominate later ones."""
    if not rewritings:
        raise EvaluationError("no rewritings to choose from")
    return min(rewritings, key=lambda r: tuple(key(r) for key in keys))


def default_heuristic_stack(
    mkb: MetaKnowledgeBase, statistics: SpaceStatistics
) -> list[HeuristicKey]:
    """The Sec. 7.6 recommendation, in priority order.

    "Minimizing the number of ISs involved ... should have a higher
    priority over choosing a certain relation distribution"; then prefer
    close-in-size replacements, then smaller and fewer relations, then
    fewer clauses.
    """
    return [
        fewest_sources_key(mkb),
        closest_size_key(statistics),
        smallest_relations_key(statistics),
        fewest_relations_key(),
        fewest_clauses_key(),
    ]
