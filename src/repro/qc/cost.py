"""The cost half of the QC-Model: incremental maintenance cost (Sec. 6).

For one data-content update at a base relation, Algorithm 1 sweeps the
sources in order, growing a delta relation.  Three cost factors fall out:

* ``CF_M`` — messages exchanged (Sec. 6.2),
* ``CF_T`` — bytes transferred (Eq. 21; Eq. 22 is the uniform special
  case),
* ``CF_IO`` — local I/O operations (Appendix A, Eqs. 32/33; the point
  estimate is the lower bound, which is what the paper's experiment
  numbers use).

The inputs are a :class:`MaintenancePlan` (which relations sit at which
source, in Algorithm 1's visiting order, and which relation was updated)
plus :class:`~repro.misd.statistics.SpaceStatistics`.

Two message-count conventions exist in the paper: the Sec. 6.2 formula
(query/response round trips only) and the experiment tables, which also
count the initial update notification.  Both are provided
(:func:`cf_messages` and :func:`cf_messages_counted`); the experiment
harnesses use the counted variant, which reproduces Tables 4/6 exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.errors import EvaluationError
from repro.esql.ast import ViewDefinition
from repro.misd.statistics import SpaceStatistics
from repro.qc.params import TradeoffParameters


@dataclass(frozen=True)
class SourceGroup:
    """One information source and the view relations it hosts, in order."""

    source: str
    relations: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.relations:
            raise EvaluationError(
                f"source group {self.source!r} hosts no view relations"
            )


@dataclass(frozen=True)
class MaintenancePlan:
    """Algorithm 1's itinerary for one update.

    ``groups[0]`` is the updating source; ``updated_relation`` is
    ``R_{1,0}``.  Relations within a group are joined locally in listed
    order; groups are visited in listed order.
    """

    groups: tuple[SourceGroup, ...]
    updated_relation: str

    def __post_init__(self) -> None:
        if not self.groups:
            raise EvaluationError("maintenance plan needs at least one source")
        if self.updated_relation not in self.groups[0].relations:
            raise EvaluationError(
                f"updated relation {self.updated_relation!r} must live at "
                f"the first source {self.groups[0].source!r}"
            )
        seen: set[str] = set()
        for group in self.groups:
            for name in group.relations:
                if name in seen:
                    raise EvaluationError(
                        f"relation {name!r} appears twice in the plan"
                    )
                seen.add(name)

    @property
    def source_count(self) -> int:
        """``m``: number of sources involved in the view."""
        return len(self.groups)

    @property
    def relation_count(self) -> int:
        """``n``: total relations referenced (including the updated one)."""
        return sum(len(group.relations) for group in self.groups)

    @property
    def first_source_other_relations(self) -> tuple[str, ...]:
        """``n_1``'s relations: first-source relations besides the updated."""
        return tuple(
            name
            for name in self.groups[0].relations
            if name != self.updated_relation
        )

    def joined_relations(self) -> tuple[str, ...]:
        """All relations joined with the delta, in Algorithm 1 order."""
        ordered = list(self.first_source_other_relations)
        for group in self.groups[1:]:
            ordered.extend(group.relations)
        return tuple(ordered)

    def queried_sources(self) -> tuple[SourceGroup, ...]:
        """Sources that receive a single-site query.

        The updating source is skipped when it hosts nothing besides the
        updated relation (footnote 12).
        """
        groups = list(self.groups)
        if not self.first_source_other_relations:
            groups = groups[1:]
        return tuple(groups)


def plan_for_view(
    view: ViewDefinition,
    owners: dict[str, str],
    updated_relation: str | None = None,
) -> MaintenancePlan:
    """Build the itinerary for ``view`` from a relation -> source map.

    Sources are visited in first-appearance order of the view's FROM list,
    rotated so the updating source comes first.  ``updated_relation``
    defaults to the first relation of the view.
    """
    if updated_relation is None:
        updated_relation = view.relation_names[0]
    if updated_relation not in view.relation_names:
        raise EvaluationError(
            f"updated relation {updated_relation!r} is not referenced by "
            f"view {view.name!r}"
        )
    by_source: dict[str, list[str]] = {}
    for name in view.relation_names:
        try:
            source = owners[name]
        except KeyError:
            raise EvaluationError(
                f"no owning source known for relation {name!r}"
            ) from None
        by_source.setdefault(source, []).append(name)

    ordered_sources = list(by_source)
    updating_source = owners[updated_relation]
    ordered_sources.remove(updating_source)
    ordered_sources.insert(0, updating_source)

    # The updated relation leads its group (it is R_{1,0}).
    first_relations = by_source[updating_source]
    first_relations.remove(updated_relation)
    first_relations.insert(0, updated_relation)

    groups = tuple(
        SourceGroup(source, tuple(by_source[source]))
        for source in ordered_sources
    )
    return MaintenancePlan(groups, updated_relation)


# ----------------------------------------------------------------------
# CF_M — messages exchanged (Sec. 6.2)
# ----------------------------------------------------------------------
def cf_messages(plan: MaintenancePlan) -> int:
    """The Sec. 6.2 formula: query/response round trips, in [0, 2m]."""
    m = plan.source_count
    n1 = len(plan.first_source_other_relations)
    if m == 1 and n1 == 0:
        return 0
    if m == 1:
        return 2
    if n1 == 0:
        return 2 * (m - 1)
    return 2 * m


def cf_messages_counted(plan: MaintenancePlan) -> int:
    """The experiment-table convention: notification + round trips.

    Equals ``1 + 2 * #queried sources``; reproduces Tables 4 and 6.
    """
    return 1 + 2 * len(plan.queried_sources())


# ----------------------------------------------------------------------
# CF_T — bytes transferred (Eq. 21)
# ----------------------------------------------------------------------
def cf_bytes(plan: MaintenancePlan, statistics: SpaceStatistics) -> float:
    """Eq. 21, evaluated iteratively over the itinerary.

    The delta starts as the single updated tuple (cardinality 1, width
    ``s_{R_{1,0}}``).  Each queried source receives the delta (in-bytes),
    joins its local relations — multiplying the expected cardinality by
    ``js * |R| * sigma_R`` per relation (footnote 15's per-relation local
    selectivity) and widening each tuple by the relation's width — and
    ships the result back (out-bytes).  The initial update notification
    also counts (first term of Eq. 21).
    """
    js = statistics.join_selectivity
    delta_cardinality = 1.0
    delta_width = float(statistics.tuple_size(plan.updated_relation))
    total = delta_cardinality * delta_width  # update notification

    for index, group in enumerate(plan.groups):
        local = (
            plan.first_source_other_relations
            if index == 0
            else group.relations
        )
        if not local:
            continue  # no query to the updating source (footnote 12)
        total += delta_cardinality * delta_width  # delta shipped to IS_i
        for name in local:
            delta_cardinality *= (
                js
                * statistics.cardinality(name)
                * statistics.selectivity(name)
            )
            delta_width += statistics.tuple_size(name)
        total += delta_cardinality * delta_width  # result shipped back
    return total


def cf_bytes_uniform(
    m: int,
    relations_per_source: Sequence[int],
    statistics: SpaceStatistics,
) -> float:
    """Eq. 22 — the closed form under uniform statistics.

    ``relations_per_source[i]`` is ``n_i``: relations at source ``i+1``
    *excluding* the updated relation for the first source.

    Two reading notes against the paper's text:

    * Eq. 22 prints the cumulative selectivity as ``sigma^j`` (per source);
      the experiment numbers (Tables 4/6) require ``sigma^{n_R(j)}`` (per
      relation, footnote 15), which is what both this closed form and the
      iterative :func:`cf_bytes` use.
    * Eq. 21/22 always include the ``R_in,IS_1`` round trip; footnote 12
      (and the experiment numbers) skip the query to the updating source
      when it hosts nothing else.  This closed form follows Eq. 22
      literally, so it exceeds :func:`cf_bytes` by ``2s`` exactly when
      ``n_1 = 0``; the two agree whenever ``n_1 > 0``.
    """
    if len(relations_per_source) != m:
        raise EvaluationError("need one relation count per source")
    s = float(statistics.tuple_size(""))
    js = statistics.join_selectivity
    sigma = statistics.selectivity("")
    r = float(statistics.cardinality(""))

    def n_r(k: int) -> int:
        return sum(relations_per_source[:k])

    total = 2.0 * s
    for j in range(1, m):
        factor = (sigma**n_r(j)) * ((r * js) ** n_r(j)) * s * (1 + n_r(j))
        total += 2.0 * factor
    total += (
        (sigma ** n_r(m)) * ((r * js) ** n_r(m)) * s * (1 + n_r(m))
    )
    return total


# ----------------------------------------------------------------------
# CF_IO — local I/O operations (Appendix A)
# ----------------------------------------------------------------------
def full_scan_ios(relation: str, statistics: SpaceStatistics) -> int:
    """Eq. 32: blocks needed to read the whole relation."""
    return math.ceil(
        statistics.cardinality(relation) / statistics.blocking_factor
    )


def cf_io(
    plan: MaintenancePlan,
    statistics: SpaceStatistics,
    upper: bool = False,
) -> float:
    """Eq. 33 summed over the joined relations (Eq. 23).

    For the i-th relation joined, the optimizer either scans it fully
    (Eq. 32) or probes the index once per delta tuple, fetching
    ``ceil(js*|R_i| / bfr)`` blocks per probe.  The delta cardinality
    before the i-th join is ``js^(i-1) * prod_{j<i} |R_j|`` (no local
    selectivities — Eq. 33 bounds the I/O before selections apply).  The
    default is the lower bound of Eq. 33 (clustered index), which is the
    estimate the paper's experiment tables use; ``upper=True`` gives the
    non-clustered bound.
    """
    js = statistics.join_selectivity
    bfr = statistics.blocking_factor
    delta_cardinality = 1.0
    total = 0.0
    for name in plan.joined_relations():
        scan = full_scan_ios(name, statistics)
        if upper:
            probe = delta_cardinality * js * statistics.cardinality(name)
        else:
            probe = delta_cardinality * math.ceil(
                js * statistics.cardinality(name) / bfr
            )
        total += min(scan, probe)
        delta_cardinality *= js * statistics.cardinality(name)
    return total


# ----------------------------------------------------------------------
# Total cost (Eq. 24) and normalization (Eq. 25)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CostAssessment:
    """The three factors plus the Eq. 24 total for one update (or one
    workload period, when multiplied out by a workload model)."""

    cf_m: float
    cf_t: float
    cf_io: float
    total: float

    def scaled(self, factor: float) -> "CostAssessment":
        return CostAssessment(
            self.cf_m * factor,
            self.cf_t * factor,
            self.cf_io * factor,
            self.total * factor,
        )

    def plus(self, other: "CostAssessment") -> "CostAssessment":
        return CostAssessment(
            self.cf_m + other.cf_m,
            self.cf_t + other.cf_t,
            self.cf_io + other.cf_io,
            self.total + other.total,
        )

    def __str__(self) -> str:
        return (
            f"CF_M={self.cf_m:.1f} CF_T={self.cf_t:.1f} "
            f"CF_IO={self.cf_io:.1f} total={self.total:.1f}"
        )


ZERO_COST = CostAssessment(0.0, 0.0, 0.0, 0.0)


def assess_cost(
    plan: MaintenancePlan,
    statistics: SpaceStatistics,
    params: TradeoffParameters,
    counted_messages: bool = True,
) -> CostAssessment:
    """All cost factors for a single update under ``plan`` (Eq. 24)."""
    messages = (
        cf_messages_counted(plan) if counted_messages else cf_messages(plan)
    )
    bytes_transferred = cf_bytes(plan, statistics)
    ios = cf_io(plan, statistics)
    total = (
        messages * params.cost_m
        + bytes_transferred * params.cost_t
        + ios * params.cost_io
    )
    return CostAssessment(float(messages), bytes_transferred, ios, total)


def normalize_costs(totals: Iterable[float]) -> list[float]:
    """Eq. 25: min-max normalize a candidate set's total costs to [0,1].

    A degenerate set (all equal, or a single candidate) normalizes to all
    zeros — the cheapest-possible reading, matching the paper's convention
    that the minimum-cost rewriting scores 0.
    """
    values = list(totals)
    if not values:
        return []
    low, high = min(values), max(values)
    if high == low:
        return [0.0 for _ in values]
    return [(value - low) / (high - low) for value in values]
