"""Regenerate every table/figure of the paper in one run, without pytest.

Run with::

    python examples/paper_tables.py

Prints Fig. 13 (Experiment 2), Fig. 14 (Experiment 3), Table 4 / Fig. 15
(Experiment 4), Tables 5/6 / Fig. 16 (Experiment 5), Fig. 10 (overlap
cases), and the Fig. 12 survival outcomes — the same computations the
benchmark suite asserts against, packaged for a quick look.
"""

import sys
from pathlib import Path

# The benchmark modules double as a library of experiment runners.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "benchmarks"))

from bench_exp1_survival import run_lifespans, report as report_exp1  # noqa: E402
from bench_exp2_sites import figure13_rows, report as report_fig13  # noqa: E402
from bench_exp3_distribution import all_panels, report as report_fig14  # noqa: E402
from bench_exp4_cardinality import run_experiment4, report as report_exp4  # noqa: E402
from bench_exp5_workloads import (  # noqa: E402
    report_table5,
    report_table6,
    run_table5,
    run_table6,
)
from bench_overlap import figure10_rows, report as report_fig10  # noqa: E402

print("=" * 72)
print("Experiment 1 (Fig. 12) — view survival")
report_exp1(run_lifespans())

print("=" * 72)
print("Experiment 2 (Fig. 13) — cost factors vs number of sources")
report_fig13(figure13_rows())

print("=" * 72)
print("Experiment 3 (Fig. 14) — relation distribution vs bytes")
report_fig14(all_panels())

print("=" * 72)
print("Experiment 4 (Table 4 / Fig. 15) — substitute cardinality")
report_exp4(run_experiment4())

print("=" * 72)
print("Experiment 5 (Tables 5/6 / Fig. 16) — workload models")
report_table5(run_table5())
report_table6(run_table6())

print("=" * 72)
print("Figure 10 — overlap estimation cases")
report_fig10(figure10_rows())

print("all paper tables regenerated OK")
