"""A long-lived warehouse in an evolving information space.

Run with::

    python examples/evolving_space.py

Simulates the paper's target setting: a materialized view over several
autonomous sources that keep changing — data updates arrive continuously
(maintained incrementally by Algorithm 1, with message/byte/IO accounting)
and capability changes arrive occasionally (handled by QC-ranked view
synchronization).  At every step the incrementally maintained extent is
cross-checked against recomputation from scratch.
"""

import random

from repro import EVESystem
from repro.core.report import format_table
from repro.esql.evaluator import evaluate_view
from repro.misd import RelationStatistics
from repro.relational import Relation
from repro.workloadgen import make_schema, populate_relation

SEED = 20260611
KEY_SPACE = 40

rng = random.Random(SEED)
eve = EVESystem()

# Three sources: products + stock levels, and a mirror of the products.
eve.add_source("Catalog")
eve.add_source("Depot")
eve.add_source("Backup")

products = populate_relation(
    make_schema("Product", ["Pid", "Category"]), 60, seed=1, key_space=KEY_SPACE
)
stock = populate_relation(
    make_schema("Stock", ["Pid", "Level"]), 80, seed=2, key_space=KEY_SPACE
)
mirror = Relation(make_schema("ProductMirror", ["Pid", "Category"]),
                  list(products.rows))

eve.register_relation("Catalog", products, RelationStatistics(cardinality=60))
eve.register_relation("Depot", stock, RelationStatistics(cardinality=80))
eve.register_relation("Backup", mirror, RelationStatistics(cardinality=60))
eve.mkb.add_equivalence("Product", "ProductMirror", ["Pid", "Category"])

eve.define_view(
    """
    CREATE VIEW LowStock (VE = '~') AS
    SELECT Product.Pid (AR = true), Product.Category (AD = true, AR = true),
           Stock.Level (AD = true)
    FROM Product (RR = true), Stock
    WHERE (Product.Pid = Stock.Pid) (CR = true)
      AND (Stock.Level < 20) (CD = true)
    """
)


def check() -> None:
    """Incremental extent must equal recomputation."""
    incremental = sorted(eve.extent("LowStock").rows)
    recomputed = sorted(
        evaluate_view(eve.vkb.current("LowStock"), eve.space.relations()).rows
    )
    assert incremental == recomputed, "incremental maintenance diverged"


events = []
check()

# Phase 1: a stream of data updates, incrementally maintained.
for step in range(40):
    relation = rng.choice(["Product", "Stock", "ProductMirror"])
    row = (rng.randrange(KEY_SPACE), rng.randrange(KEY_SPACE))
    eve.space.insert(relation, row)
    if relation == "Product":  # keep the replica true to its constraint
        eve.space.insert("ProductMirror", row)
    check()
events.append(("40 inserts", "maintained incrementally", "extent consistent"))

counters = eve.maintainer.counters
events.append(
    (
        "measured maintenance cost",
        f"{counters.messages} messages, {counters.bytes_transferred} bytes",
        f"{counters.io_operations} I/Os",
    )
)

# Phase 2: the catalog source withdraws its Product relation.
eve.space.delete_relation("Product")
assert eve.is_alive("LowStock")
current = eve.vkb.current("LowStock")
events.append(
    (
        "delete-relation Product",
        f"rewritten over {current.relation_names}",
        f"QC = {eve.synchronization_log[-1].chosen.qc:.4f}",
    )
)
check()

# Phase 3: maintenance continues against the rewritten view.
for step in range(20):
    relation = rng.choice(["ProductMirror", "Stock"])
    row = (rng.randrange(KEY_SPACE), rng.randrange(KEY_SPACE))
    eve.space.insert(relation, row)
    check()
events.append(("20 more inserts", "maintained against the rewriting",
               "extent consistent"))

print(format_table(["Event", "Outcome", "Detail"], events,
                   title="Evolving-space run (seeded, deterministic)"))
print(f"\nview generations survived: {eve.generations('LowStock')}")
print("evolving space example OK")
