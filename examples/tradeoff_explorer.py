"""Trade-off explorer: how the QC ranking responds to every model knob.

Run with::

    python examples/tradeoff_explorer.py

Uses the Experiment 4 scenario (five substitute relations of growing
cardinality for a deleted one) driven through the system API: one
:class:`~repro.config.SystemConfig` profile configures the stack, the
candidate spectrum comes from ``EVESystem.candidate_rewritings``, and
each sweep step re-ranks it with ``EVESystem.rank_rewritings`` under
different :class:`~repro.qc.TradeoffParameters`.  Sweeps the
quality/cost weight from pure-quality to pure-cost, printing which
rewriting wins at each setting and where the crossover falls; then
shows the effect of the extent weights rho_d1/rho_d2 (punishing lost
tuples vs surplus tuples).  Finally the winning rewriting is committed
for real, observed through the typed event bus.
"""

from repro import (
    EVESystem,
    SystemConfig,
    TradeoffParameters,
    ViewSynchronized,
)
from repro.core.report import format_table
from repro.space import DeleteRelation
from repro.workloadgen import build_cardinality_scenario

#: One profile for every system in this script (the fast plane; the
#: ranking itself is engine-independent, as the parity tests enforce).
CONFIG = SystemConfig.fast()

scenario = build_cardinality_scenario()
explorer = EVESystem(
    space=scenario.space, auto_synchronize=False, config=CONFIG
)
explorer.define_view(scenario.view, materialize=False)
change = explorer.space.delete_relation("R2")
rewritings = explorer.candidate_rewritings(scenario.view.name, change)
rewritings.sort(key=lambda r: r.moves[-1].new_relation)
named = [r.renamed(f"V{i + 1}") for i, r in enumerate(rewritings)]
print(
    f"{len(named)} legal rewritings for the deleted R2 "
    f"(substitutes S1..S5, 2000..6000 tuples)\n"
)


def rank(params):
    """One ranking under one parameter setting, via the system API."""
    system = EVESystem(
        params=params,
        space=scenario.space,
        auto_synchronize=False,
        config=CONFIG,
    )
    return system.rank_rewritings(named, updated_relation="R1")


# ----------------------------------------------------------------------
# Sweep 1: quality weight from 1.0 down to 0.0
# ----------------------------------------------------------------------
rows = []
previous_winner = None
crossovers = []
for step in range(0, 21):
    rho_quality = 1.0 - step * 0.05
    params = TradeoffParameters().with_quality_weight(round(rho_quality, 2))
    evaluations = rank(params)
    winner = evaluations[0]
    if previous_winner is not None and winner.name != previous_winner:
        crossovers.append((round(rho_quality, 2), previous_winner, winner.name))
    previous_winner = winner.name
    rows.append(
        [
            f"{rho_quality:.2f}",
            winner.name,
            f"{winner.qc:.4f}",
            " > ".join(e.name for e in evaluations),
        ]
    )
print(
    format_table(
        ["rho_quality", "winner", "QC", "full ranking"],
        rows,
        title="Sweep: quality weight vs chosen rewriting",
    )
)
print("\ncrossovers:", crossovers or "none")
assert rows[0][1] == "V3", "pure quality must pick the exact substitute"
assert rows[-1][1] == "V1", "pure cost must pick the smallest substitute"

# ----------------------------------------------------------------------
# Sweep 2: punishing lost tuples vs surplus tuples
# ----------------------------------------------------------------------
print()
rows = []
for rho_d1 in (1.0, 0.75, 0.5, 0.25, 0.0):
    params = TradeoffParameters(
        rho_d1=rho_d1, rho_d2=1.0 - rho_d1
    ).with_quality_weight(1.0)
    evaluations = rank(params)
    quality_order = " > ".join(e.name for e in evaluations)
    rows.append([f"{rho_d1:.2f}", f"{1 - rho_d1:.2f}", quality_order])
print(
    format_table(
        ["rho_d1 (lost)", "rho_d2 (surplus)", "quality-only ranking"],
        rows,
        title="Sweep: extent weights (pure quality)",
    )
)
# Punishing only lost tuples makes every superset substitute perfect;
# punishing only surplus makes every subset substitute perfect.
only_lost = rows[0][2]
only_surplus = rows[-1][2]
assert only_lost.index("V4") < only_lost.index("V1")
assert only_surplus.index("V1") < only_surplus.index("V4")

# ----------------------------------------------------------------------
# Commit the default-parameter winner for real, watched on the bus
# ----------------------------------------------------------------------
print()
committed = EVESystem(
    space=build_cardinality_scenario().space, config=CONFIG
)
committed.define_view(scenario.view, materialize=False)
events = []
committed.subscribe(ViewSynchronized, events.append)
committed.apply_changes([DeleteRelation("IS1", "R2")])
(event,) = events
print(
    f"committed for real: {event.view_name} -> "
    f"{event.result.chosen.rewriting.view.relation_names} "
    f"(QC = {event.result.chosen.qc:.4f}, "
    f"assessed {event.counters.assessed} of "
    f"{event.counters.legal} legal candidates)"
)
report = committed.last_report.to_dict()
assert report["synchronization"]["survived"] == 1
print("\ntradeoff explorer OK")
