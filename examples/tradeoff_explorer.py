"""Trade-off explorer: how the QC ranking responds to every model knob.

Run with::

    python examples/tradeoff_explorer.py

Uses the Experiment 4 scenario (five substitute relations of growing
cardinality for a deleted one) and sweeps the quality/cost weight from
pure-quality to pure-cost, printing which rewriting wins at each setting
and where the crossover falls.  Then shows the effect of the extent
weights rho_d1/rho_d2 (punishing lost tuples vs surplus tuples).
"""

from repro.core.report import format_table
from repro.qc import QCModel, TradeoffParameters
from repro.space import DeleteRelation
from repro.sync import ViewSynchronizer
from repro.workloadgen import build_cardinality_scenario

scenario = build_cardinality_scenario()
scenario.space.delete_relation("R2")
synchronizer = ViewSynchronizer(scenario.space.mkb)
rewritings = synchronizer.synchronize(
    scenario.view, DeleteRelation("IS1", "R2")
)
rewritings.sort(key=lambda r: r.moves[-1].new_relation)
named = [r.renamed(f"V{i + 1}") for i, r in enumerate(rewritings)]
print(
    f"{len(named)} legal rewritings for the deleted R2 "
    f"(substitutes S1..S5, 2000..6000 tuples)\n"
)

# ----------------------------------------------------------------------
# Sweep 1: quality weight from 1.0 down to 0.0
# ----------------------------------------------------------------------
rows = []
previous_winner = None
crossovers = []
for step in range(0, 21):
    rho_quality = 1.0 - step * 0.05
    params = TradeoffParameters().with_quality_weight(round(rho_quality, 2))
    model = QCModel(scenario.space.mkb, params)
    evaluations = model.evaluate(named, updated_relation="R1")
    winner = evaluations[0]
    if previous_winner is not None and winner.name != previous_winner:
        crossovers.append((round(rho_quality, 2), previous_winner, winner.name))
    previous_winner = winner.name
    rows.append(
        [
            f"{rho_quality:.2f}",
            winner.name,
            f"{winner.qc:.4f}",
            " > ".join(e.name for e in evaluations),
        ]
    )
print(
    format_table(
        ["rho_quality", "winner", "QC", "full ranking"],
        rows,
        title="Sweep: quality weight vs chosen rewriting",
    )
)
print("\ncrossovers:", crossovers or "none")
assert rows[0][1] == "V3", "pure quality must pick the exact substitute"
assert rows[-1][1] == "V1", "pure cost must pick the smallest substitute"

# ----------------------------------------------------------------------
# Sweep 2: punishing lost tuples vs surplus tuples
# ----------------------------------------------------------------------
print()
rows = []
for rho_d1 in (1.0, 0.75, 0.5, 0.25, 0.0):
    params = TradeoffParameters(
        rho_d1=rho_d1, rho_d2=1.0 - rho_d1
    ).with_quality_weight(1.0)
    model = QCModel(scenario.space.mkb, params)
    evaluations = model.evaluate(named, updated_relation="R1")
    quality_order = " > ".join(e.name for e in evaluations)
    rows.append([f"{rho_d1:.2f}", f"{1 - rho_d1:.2f}", quality_order])
print(
    format_table(
        ["rho_d1 (lost)", "rho_d2 (surplus)", "quality-only ranking"],
        rows,
        title="Sweep: extent weights (pure quality)",
    )
)
# Punishing only lost tuples makes every superset substitute perfect;
# punishing only surplus makes every subset substitute perfect.
only_lost = rows[0][2]
only_surplus = rows[-1][2]
assert only_lost.index("V4") < only_lost.index("V1")
assert only_surplus.index("V1") < only_surplus.index("V4")
print("\ntradeoff explorer OK")
