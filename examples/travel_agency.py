"""Travel agency scenario: the paper's motivating example, end to end.

Run with::

    python examples/travel_agency.py

A warehouse view joins customer records with flight reservations from
several autonomous travel agencies (the paper's Asia-Customer view of
Sec. 3.1).  One agency changes the services it offers — first renaming a
column, then dropping its customer table entirely.  The view survives
both changes: the rename folds in silently, and the drop is repaired from
a partner agency's overlapping customer list recorded in the MKB.
"""

from repro import EVESystem
from repro.core.report import format_ranking
from repro.misd import RelationStatistics
from repro.relational import Attribute, AttributeType, Relation, Schema


def string_schema(name, attributes):
    return Schema(
        name, [Attribute(a, AttributeType.STRING) for a in attributes]
    )


eve = EVESystem()
for agency in ("SkyTravel", "GlobalTours", "FlightHub"):
    eve.add_source(agency)

customers = Relation(
    string_schema("Customer", ["Name", "Address", "Phone"]),
    [
        ("ann", "12 Elm St", "555-0001"),
        ("bob", "9 Oak Ave", "555-0002"),
        ("cy", "4 Pine Rd", "555-0003"),
        ("di", "7 Ash Ln", "555-0004"),
    ],
)
reservations = Relation(
    string_schema("FlightRes", ["PName", "Dest"]),
    [
        ("ann", "Asia"),
        ("bob", "Europe"),
        ("cy", "Asia"),
        ("di", "Asia"),
        ("ann", "Europe"),
    ],
)
# GlobalTours keeps an overlapping customer directory (a partial replica:
# everything SkyTravel has, plus its own extras).
directory = Relation(
    string_schema("Directory", ["FullName", "Street", "Tel"]),
    list(customers.rows) + [("ed", "3 Fir Ct", "555-0005")],
)

eve.register_relation(
    "SkyTravel", customers, RelationStatistics(cardinality=4)
)
eve.register_relation(
    "FlightHub", reservations, RelationStatistics(cardinality=5)
)
eve.register_relation(
    "GlobalTours", directory, RelationStatistics(cardinality=5)
)

# MISD knowledge: SkyTravel's customer list is contained in the directory,
# with a positional attribute correspondence.
from repro.misd import PCConstraint, PCRelationship, RelationFragment  # noqa: E402 - narrative order

eve.mkb.add_pc_constraint(
    PCConstraint(
        RelationFragment("Customer", ("Name", "Address", "Phone")),
        RelationFragment("Directory", ("FullName", "Street", "Tel")),
        PCRelationship.SUBSET,
    )
)

eve.define_view(
    """
    CREATE VIEW AsiaCustomer (VE = '~') AS
    SELECT Customer.Name (AR = true),
           Customer.Address (AD = true, AR = true),
           Customer.Phone (AD = true, AR = true)
    FROM Customer (RR = true), FlightRes
    WHERE (Customer.Name = FlightRes.PName) (CR = true)
      AND (FlightRes.Dest = 'Asia') (CD = true)
    """
)
print("Asia customers:", sorted(r[0] for r in eve.extent("AsiaCustomer").rows))

# Change 1: FlightHub renames a column. The view survives unchanged in
# meaning — the rename is folded into the definition.
eve.space.rename_attribute("FlightRes", "Dest", "Destination")
print("\nafter rename-attribute:")
print("  alive:", eve.is_alive("AsiaCustomer"))
print("  WHERE:", "; ".join(str(w) for w in eve.vkb.current("AsiaCustomer").where))

# Change 2: SkyTravel drops its Customer table. The synchronizer repairs
# the view from GlobalTours' directory via the PC constraint.
eve.space.delete_relation("Customer")
result = eve.synchronization_log[-1]
print("\nafter delete-relation Customer:")
print(format_ranking(result.evaluations, "  candidate ranking"))
current = eve.vkb.current("AsiaCustomer")
print("  rewritten FROM:", current.relation_names)
print("  interface preserved:", current.interface)
print("  Asia customers now:", sorted(r[0] for r in eve.extent("AsiaCustomer").rows))

assert eve.is_alive("AsiaCustomer")
assert current.interface == ("Name", "Address", "Phone")
assert sorted(r[0] for r in eve.extent("AsiaCustomer").rows) == [
    "ann", "cy", "di",
]
print("\ntravel agency example OK")
