"""The columnar execution plane: vectorized kernels, identical answers.

Run with::

    python examples/columnar_plane.py

``SystemConfig(maintenance=MaintenanceConfig(representation="columnar"))``
switches evaluation and delta propagation to column-at-a-time kernels:
extents and delta batches travel as per-attribute columns, WHERE
conjuncts run as compiled kernels producing selection vectors, and
equijoins become vectorized hash probes over key columns.  Execution
changes; answers do not — extents and the modeled CF_M/CF_T/CF_IO
counters stay byte-identical to the row planes, which is exactly what
the parity property suites pin.

What the plane adds is *observability*: every kernel records how many
rows it scanned and how many survived, read back off the
:class:`~repro.report.SystemReport` under ``maintenance.kernels``.
"""

from repro import EVESystem, SystemConfig
from repro.config import EngineConfig, MaintenanceConfig
from repro.misd import RelationStatistics
from repro.relational import Relation, Schema

# 1. Configure the columnar plane.  Spelled out, the profile is an
#    indexed engine evaluating views columnar plus a maintainer
#    propagating deltas columnar; SystemConfig.columnar() is the
#    one-call preset for the same thing (plus threaded coalesced
#    scheduling), and both round-trip losslessly through JSON.
config = SystemConfig(
    engine=EngineConfig(representation="columnar"),
    maintenance=MaintenanceConfig(representation="columnar"),
)
assert SystemConfig.from_dict(config.to_dict()) == config
eve = EVESystem(config=config)

# 2. A two-source join view, small enough to read.
eve.add_source("Sales")
eve.add_source("Catalog")
eve.register_relation(
    "Sales",
    Relation(
        Schema("Orders", ["OrderId", "ProductId", "Quantity"]),
        [(1, 10, 3), (2, 11, 1), (3, 10, 5), (4, 12, 2)],
    ),
    RelationStatistics(cardinality=4),
)
eve.register_relation(
    "Catalog",
    Relation(
        Schema("Products", ["ProductId", "Price"]),
        [(10, 25), (11, 40), (12, 7)],
    ),
    RelationStatistics(cardinality=3),
)
eve.define_view(
    """
    CREATE VIEW BigLines AS
    SELECT Orders.OrderId, Products.Price
    FROM Orders, Products
    WHERE Orders.ProductId = Products.ProductId AND Orders.Quantity > 1
    """
)
print("extent:", sorted(eve.extent("BigLines").rows))
assert sorted(eve.extent("BigLines").rows) == [(1, 25), (3, 25), (4, 7)]

# 3. Maintain through an update stream; deltas propagate as columns.
eve.apply_updates(
    [
        ("Orders", "insert", (5, 11, 9)),
        ("Orders", "delete", (4, 12, 2)),
    ]
)
print("after updates:", sorted(eve.extent("BigLines").rows))
assert sorted(eve.extent("BigLines").rows) == [(1, 25), (3, 25), (5, 40)]

# 4. Kernel counters ride the run report: rows scanned vs selected
#    across every filter kernel and hash probe the flush executed.
report = eve.last_report.to_dict()
kernels = report["maintenance"]["kernels"]
print("kernels:", kernels)
assert kernels["rows_scanned"] > 0
assert 0 < kernels["rows_selected"]

# 5. The modeled maintenance counters are plane-independent: a dict
#    (reference) system fed the same story charges the exact same
#    CF_M/CF_T/CF_IO — the columnar plane only changes *execution*.
counters = report["maintenance"]["counters"]
print("modeled counters:", counters)
assert counters["messages"] > 0

print("\ncolumnar plane OK")
