"""Quickstart: define a view, lose a relation, get a QC-ranked replacement.

Run with::

    python examples/quickstart.py

Walks the minimal EVE loop through the system API: configure the system
with a declarative :class:`~repro.config.SystemConfig` profile, register
two sources whose relations overlap (recorded as a PC constraint),
subscribe to the typed event bus, define an E-SQL view with evolution
preferences, delete the relation the view depends on, and watch the
system synchronize it to the best-ranked legal rewriting — then read the
whole story back from the serializable :class:`~repro.report.SystemReport`.
"""

from repro import (
    EVESystem,
    SystemConfig,
    ViewMaintained,
    ViewSynchronized,
)
from repro.misd import RelationStatistics
from repro.relational import Relation, Schema
from repro.space import DeleteRelation

# 0. One declarative profile configures every subsystem.  Presets:
#    SystemConfig() (the default), SystemConfig.reference() (the naive
#    everything-eager parity plane), SystemConfig.fast() (indexed /
#    pruned / coalesced), SystemConfig.bounded(budget_units=...).
#    Profiles round-trip losslessly through JSON:
config = SystemConfig.fast()
assert SystemConfig.from_dict(config.to_dict()) == config
eve = EVESystem(config=config)

# Observers subscribe to typed events instead of polling result state.
eve.subscribe(
    ViewSynchronized,
    lambda event: print(
        f"[event] {event.view_name} synchronized "
        f"(survived={event.survived}, "
        f"assessed={event.counters.assessed})"
    ),
)
eve.subscribe(
    ViewMaintained,
    lambda event: print(
        f"[event] {event.view_name} maintained: {event.updates} update(s) "
        f"over {'/'.join(event.relations)}, {event.counters.messages} msgs"
    ),
)

# 1. Register information sources and their relations.
eve.add_source("Primary")
eve.add_source("Mirror")
orders = Relation(
    Schema("Orders", ["OrderId", "CustomerId", "Amount"]),
    [(1, 100, 250), (2, 101, 90), (3, 100, 40)],
)
orders_mirror = Relation(
    Schema("OrdersMirror", ["OrderId", "CustomerId", "Amount"]),
    list(orders.rows),
)
eve.register_relation("Primary", orders, RelationStatistics(cardinality=3))
eve.register_relation(
    "Mirror", orders_mirror, RelationStatistics(cardinality=3)
)

# 2. Tell the MKB the mirror is equivalent to the primary.
eve.mkb.add_equivalence("Orders", "OrdersMirror")

# 3. Define an E-SQL view. AR = true marks attributes replaceable; the
#    FROM entry's RR = true marks the relation replaceable.
eve.define_view(
    """
    CREATE VIEW BigOrders (VE = '~') AS
    SELECT Orders.OrderId (AR = true),
           Orders.Amount (AD = true, AR = true)
    FROM Orders (RR = true)
    WHERE (Orders.Amount > 50) (CR = true)
    """
)
print("materialized extent:", sorted(eve.extent("BigOrders").rows))

# 4. Data updates maintain the view incrementally.  A batched stream
#    goes through apply_updates (the mirror receives the same update —
#    that is what keeps the equivalence constraint true).
eve.apply_updates(
    [
        ("Orders", "insert", (4, 102, 500)),
        ("OrdersMirror", "insert", (4, 102, 500)),
    ]
)
print("after insert:      ", sorted(eve.extent("BigOrders").rows))
print(
    "maintenance report:",
    eve.last_report.to_dict()["maintenance"]["counters"],
)

# 5. A capability change: the primary source stops offering Orders.
eve.apply_changes([DeleteRelation("Primary", "Orders")])

record = eve.vkb.record("BigOrders")
result = eve.synchronization_log[-1]
print("\nview survived:", record.alive)
print("rewritten over:", record.current.relation_names)
print(
    f"chosen rewriting QC = {result.chosen.qc:.4f} "
    f"(DD = {result.chosen.quality.dd:.4f})"
)
print("extent after rewrite:", sorted(eve.extent("BigOrders").rows))
assert sorted(eve.extent("BigOrders").rows) == [
    (1, 250), (2, 90), (4, 500),
]

# 6. The same story, machine-readable: every apply_* call leaves a
#    schema-versioned SystemReport (the JSON the benchmarks embed).
report = eve.last_report.to_dict()
assert report["operation"] == "apply_changes"
assert report["synchronization"]["survived"] == 1
print("\nrun report:", eve.last_report.to_json()[:120], "...")
print("\nquickstart OK")
