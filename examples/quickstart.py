"""Quickstart: define a view, lose a relation, get a QC-ranked replacement.

Run with::

    python examples/quickstart.py

Walks the minimal EVE loop: register two sources whose relations overlap
(recorded as a PC constraint), define an E-SQL view with evolution
preferences, delete the relation the view depends on, and watch the system
synchronize it to the best-ranked legal rewriting.
"""

from repro import EVESystem
from repro.misd import RelationStatistics
from repro.relational import Relation, Schema

eve = EVESystem()

# 1. Register information sources and their relations.
eve.add_source("Primary")
eve.add_source("Mirror")
orders = Relation(
    Schema("Orders", ["OrderId", "CustomerId", "Amount"]),
    [(1, 100, 250), (2, 101, 90), (3, 100, 40)],
)
orders_mirror = Relation(
    Schema("OrdersMirror", ["OrderId", "CustomerId", "Amount"]),
    list(orders.rows),
)
eve.register_relation("Primary", orders, RelationStatistics(cardinality=3))
eve.register_relation(
    "Mirror", orders_mirror, RelationStatistics(cardinality=3)
)

# 2. Tell the MKB the mirror is equivalent to the primary.
eve.mkb.add_equivalence("Orders", "OrdersMirror")

# 3. Define an E-SQL view. AR = true marks attributes replaceable; the
#    FROM entry's RR = true marks the relation replaceable.
eve.define_view(
    """
    CREATE VIEW BigOrders (VE = '~') AS
    SELECT Orders.OrderId (AR = true),
           Orders.Amount (AD = true, AR = true)
    FROM Orders (RR = true)
    WHERE (Orders.Amount > 50) (CR = true)
    """
)
print("materialized extent:", sorted(eve.extent("BigOrders").rows))

# 4. Data updates maintain the view incrementally.  The mirror receives
#    the same update — that is what keeps the equivalence constraint true.
eve.space.insert("Orders", (4, 102, 500))
eve.space.insert("OrdersMirror", (4, 102, 500))
print("after insert:      ", sorted(eve.extent("BigOrders").rows))

# 5. A capability change: the primary source stops offering Orders.
eve.space.delete_relation("Orders")

record = eve.vkb.record("BigOrders")
result = eve.synchronization_log[0]
print("\nview survived:", record.alive)
print("rewritten over:", record.current.relation_names)
print(
    f"chosen rewriting QC = {result.chosen.qc:.4f} "
    f"(DD = {result.chosen.quality.dd:.4f})"
)
print("extent after rewrite:", sorted(eve.extent("BigOrders").rows))
assert sorted(eve.extent("BigOrders").rows) == [
    (1, 250), (2, 90), (4, 500),
]
print("\nquickstart OK")
