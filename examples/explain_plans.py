"""EXPLAIN: read the plans behind evaluation and maintenance.

Run with::

    python examples/explain_plans.py

Builds the paper's travel-agency space, then inspects what the system
would do without guessing from timings: the evaluation plan for a
two-way join (greedy join order, index probe vs scan, estimated vs
actual cardinalities via ``analyze=True``), the guard-railed optimizer's
transform decisions under ``optimize=True`` (applied with a cost
improvement, or refused with the reason), and Algorithm 1's maintenance
itinerary for a data update.  Plans also land in every
``apply_changes``/``apply_updates`` run report under the ``plans``
section (report schema v3).
"""

from repro import EVESystem, EngineConfig, SystemConfig
from repro.misd import RelationStatistics
from repro.relational import Attribute, AttributeType, Relation, Schema

STRING = AttributeType.STRING


def string_schema(name, attributes):
    return Schema(name, [Attribute(a, STRING) for a in attributes])


def build_system(config=None):
    eve = EVESystem(config=config, auto_synchronize=False)
    eve.add_source("Agency")
    eve.register_relation(
        "Agency",
        Relation(
            string_schema("Customer", ["Name", "City"]),
            [("ann", "nyc"), ("bob", "sfo"), ("cat", "nyc")],
        ),
        RelationStatistics(cardinality=3),
    )
    eve.register_relation(
        "Agency",
        Relation(
            string_schema("Booking", ["PName", "Dest"]),
            [
                ("ann", "asia"),
                ("bob", "europe"),
                ("cat", "asia"),
                ("cat", "europe"),
            ],
        ),
        RelationStatistics(cardinality=4),
    )
    eve.define_view(
        """
        CREATE VIEW Itineraries AS
        SELECT Customer.Name, Booking.Dest
        FROM Customer, Booking
        WHERE Customer.City = 'nyc' AND Customer.Name = Booking.PName
        """
    )
    return eve


# 1. The evaluation plan, with actuals reconciled from a traced run.
eve = build_system()
plan = eve.explain("Itineraries", analyze=True)
print(plan.to_text())
assert plan.join_order == ("Customer", "Booking")
assert [step.access for step in plan.steps] == ["scan", "index_probe"]
assert plan.actual_rows == 3

# 2. The same plan as stable data — what the run report embeds.
payload = plan.to_dict()
assert payload["kind"] == "evaluation"
assert payload["steps"][1]["probe"] == ["Booking.PName = Customer.Name"]

# 3. The guard-railed optimizer: every transform decision is recorded,
#    applied only when the cost model proves an improvement (here: the
#    final probe feeds no output and its keys are unique, so it becomes
#    an early-terminating existence check), refused with a reason
#    otherwise.  Either way the extent is bag-identical by contract.
optimizing = build_system(
    SystemConfig(engine=EngineConfig(optimize=True))
)
optimizing.define_view(
    """
    CREATE VIEW NycTravellers AS
    SELECT Customer.Name
    FROM Customer, Booking
    WHERE Customer.City = 'nyc' AND Customer.Name = Booking.PName
    """
)
optimized = optimizing.explain("NycTravellers")
print()
print(optimized.optimizer.to_text())
decision = optimized.optimizer.decisions[0]
assert decision.transform == "semi_join_probe"
assert not decision.applied  # "cat" books twice: duplicates refuse it
assert "duplicate probe keys" in decision.reason
assert optimizing.explain("Itineraries").optimizer.decisions == ()
assert optimizing.extent("Itineraries").rows == eve.extent("Itineraries").rows

# Remove the duplicate booking and the same site becomes provably safe:
# the uniqueness check passes and the transform is applied.
optimizing.apply_updates([("Booking", "delete", ("cat", "europe"))])
applied = optimizing.explain("NycTravellers").optimizer.decisions[0]
print(applied.to_text())
assert applied.applied
assert applied.reason == "cost-improvement: unique-key existence probe"

# 4. Algorithm 1's maintenance itinerary for an update to Booking.
itinerary = eve.explain_maintenance("Itineraries", "Booking")
print()
print(itinerary.to_text())
assert itinerary.steps[0].relation == "Customer"

# 5. Plans are captured system-wide: apply_updates leaves maintenance
#    itineraries (with actual counters) in the schema-v4 run report.
eve.apply_updates([("Booking", "insert", ("ann", "africa"))])
report = eve.last_report.to_dict()
assert report["schema_version"] == 4
assert report["plans"]["total"] == 1
assert report["plans"]["views"][0]["kind"] == "maintenance"
print()
print("report plans:", report["plans"]["total"], "captured")

print("\nexplain plans OK")
