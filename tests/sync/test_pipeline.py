"""Unit tests for the streaming rewriting-search pipeline."""

import pytest

from repro.errors import SynchronizationError
from repro.esql.parser import parse_view
from repro.misd.statistics import RelationStatistics
from repro.qc.model import QCModel
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import DeleteAttribute, DeleteRelation
from repro.space.space import InformationSpace
from repro.sync.legality import check_legality
from repro.sync.pipeline import (
    RewritingSearchPipeline,
    SearchPolicy,
    StageCounters,
)
from repro.sync.synchronizer import ViewSynchronizer


@pytest.fixture
def space():
    space = InformationSpace()
    layout = [
        ("IS0", "R", 4000),
        ("IS1", "S1", 2000),
        ("IS2", "S2", 4000),
        ("IS3", "S3", 6000),
    ]
    for source, name, cardinality in layout:
        space.add_source(source)
        space.register_relation(
            source,
            Relation(Schema(name, ["A", "B", "C"])),
            RelationStatistics(cardinality=cardinality, tuple_size=100),
        )
    for donor in ("S1", "S2", "S3"):
        space.mkb.add_containment("R", donor, ["A", "B", "C"])
    return space


@pytest.fixture
def pipeline(space):
    return RewritingSearchPipeline(
        ViewSynchronizer(space.mkb), QCModel(space.mkb)
    )


VIEW = (
    "CREATE VIEW V (VE = '~') AS "
    "SELECT R.A (AD = true, AR = true), R.B (AD = true, AR = true), "
    "R.C (AD = true, AR = true) "
    "FROM R (RR = true)"
)

CHANGE = DeleteRelation("IS0", "R")


class TestPolicies:
    def test_policy_parsing(self):
        assert SearchPolicy.of("pruned") == SearchPolicy.pruned()
        assert SearchPolicy.of("top_k(4)") == SearchPolicy.top_k(4)
        assert str(SearchPolicy.top_k(4)) == "top_k(4)"
        with pytest.raises(SynchronizationError):
            SearchPolicy.of("best_effort")
        with pytest.raises(SynchronizationError):
            SearchPolicy.top_k(0)

    def test_exhaustive_matches_eager_reference(self, space, pipeline):
        view = parse_view(VIEW)
        synchronizer = pipeline.synchronizer
        eager = [
            rewriting
            for rewriting in synchronizer.synchronize(view, CHANGE)
            if check_legality(rewriting).legal
        ]
        reference = pipeline.qc_model.evaluate(eager)
        result = pipeline.search(view, CHANGE, policy="exhaustive")
        assert [e.rewriting for e in result.evaluations] == [
            e.rewriting for e in reference
        ]
        assert [e.qc for e in result.evaluations] == [e.qc for e in reference]
        assert result.counters.assessed == len(eager)

    def test_pruned_same_winner_fewer_assessments(self, space, pipeline):
        view = parse_view(VIEW)
        exhaustive = pipeline.search(view, CHANGE, policy="exhaustive")
        pruned = pipeline.search(view, CHANGE, policy="pruned")
        assert pruned.chosen.rewriting == exhaustive.chosen.rewriting
        assert pruned.chosen.qc == exhaustive.chosen.qc
        assert pruned.counters.assessed <= exhaustive.counters.assessed
        assert (
            pruned.counters.assessed + pruned.counters.pruned
            == pruned.counters.legal
        )

    def test_top_k_returns_k_ranked(self, space, pipeline):
        view = parse_view(VIEW)
        result = pipeline.search(view, CHANGE, policy="top_k(2)")
        assert len(result.evaluations) <= 2
        assert [e.rank for e in result.evaluations] == list(
            range(1, len(result.evaluations) + 1)
        )
        exhaustive = pipeline.search(view, CHANGE, policy="exhaustive")
        assert result.chosen.rewriting == exhaustive.chosen.rewriting
        assert result.chosen.qc == exhaustive.chosen.qc

    def test_first_legal_stops_generating(self, space, pipeline):
        view = parse_view(VIEW)
        result = pipeline.search(view, CHANGE, policy="first_legal")
        exhaustive = pipeline.search(view, CHANGE, policy="exhaustive")
        # The old-EVE baseline: one candidate generated, one assessed,
        # and it is the generation-order-first legal rewriting.
        assert result.counters.generated < exhaustive.counters.generated
        assert result.counters.assessed == 1
        assert result.chosen.rewriting.view.relation_names == ("S1",)

    def test_default_policy_is_pruned(self, pipeline):
        assert pipeline.policy == SearchPolicy.pruned()


class TestStreamBehaviour:
    def test_unaffected_view_yields_identity(self, space, pipeline):
        view = parse_view(VIEW)
        unrelated = DeleteAttribute("IS1", "S1", "C")
        result = pipeline.search(view, unrelated)
        assert result.survived
        assert result.chosen.rewriting.is_identity
        assert result.counters.generated == 1

    def test_dead_view_has_no_winner(self, space, pipeline):
        doomed = parse_view("CREATE VIEW W AS SELECT S1.A, S1.B FROM S1")
        result = pipeline.search(doomed, DeleteRelation("IS1", "S1"))
        assert not result.survived
        assert result.evaluations == []
        assert result.counters.legal == 0

    def test_counters_balance(self, space, pipeline):
        view = parse_view(VIEW)
        for policy in ("exhaustive", "pruned"):
            counters = pipeline.search(view, CHANGE, policy=policy).counters
            assert (
                counters.generated + counters.dominated
                == counters.ve_rejected
                + counters.duplicates
                + counters.illegal
                + counters.legal
            )

    def test_dominated_spectrum_only_on_request(self, space, pipeline, monkeypatch):
        import repro.sync.generators.dominated as dominated

        def boom(rewriting, limit=32):
            raise AssertionError("spectrum materialized without request")

        monkeypatch.setattr(dominated, "iter_dominated_variants", boom)
        view = parse_view(VIEW)
        result = pipeline.search(view, CHANGE)  # fine: spectrum not requested
        assert result.survived
        with pytest.raises(AssertionError):
            pipeline.search(view, CHANGE, include_dominated=True)

    def test_dominated_spectrum_counted(self, space, pipeline):
        view = parse_view(VIEW)
        result = pipeline.search(view, CHANGE, include_dominated=True)
        assert result.counters.dominated > 0


class TestCounters:
    def test_merged(self):
        left = StageCounters(generated=2, assessed=1)
        right = StageCounters(generated=3, pruned=4)
        merged = left.merged(right)
        assert merged.generated == 5
        assert merged.assessed == 1
        assert merged.pruned == 4

    def test_str_mentions_stages(self):
        text = str(StageCounters(generated=7))
        assert "generated=7" in text and "pruned=0" in text


class TestPolicyParsing:
    def test_malformed_top_k_raises_domain_error(self):
        with pytest.raises(SynchronizationError):
            SearchPolicy.of("top_k(x)")
        with pytest.raises(SynchronizationError):
            SearchPolicy.of("top_k(")
