"""Unit tests for the View Knowledge Base."""

import pytest

from repro.errors import WorkspaceError
from repro.esql.parser import parse_view
from repro.sync.rewriting import ExtentRelationship, Rewriting
from repro.sync.vkb import ViewKnowledgeBase


@pytest.fixture
def vkb():
    base = ViewKnowledgeBase()
    base.define(parse_view("CREATE VIEW V1 AS SELECT R.A FROM R"))
    base.define(parse_view("CREATE VIEW V2 AS SELECT S.B FROM S"))
    return base


class TestRegistration:
    def test_define_and_lookup(self, vkb):
        assert "V1" in vkb
        assert len(vkb) == 2
        assert vkb.current("V1").relation_names == ("R",)

    def test_duplicate_define_rejected(self, vkb):
        with pytest.raises(WorkspaceError):
            vkb.define(parse_view("CREATE VIEW V1 AS SELECT R.A FROM R"))

    def test_drop(self, vkb):
        vkb.drop("V1")
        assert "V1" not in vkb
        with pytest.raises(WorkspaceError):
            vkb.drop("V1")

    def test_unknown_record(self, vkb):
        with pytest.raises(WorkspaceError):
            vkb.record("Zzz")


class TestQueries:
    def test_views_referencing(self, vkb):
        assert [r.name for r in vkb.views_referencing("R")] == ["V1"]
        assert vkb.views_referencing("Z") == ()

    def test_alive_views(self, vkb):
        assert len(vkb.alive_views()) == 2
        vkb.mark_undefined("V1")
        assert [r.name for r in vkb.alive_views()] == ["V2"]

    def test_dead_views_not_reported_as_referencing(self, vkb):
        vkb.mark_undefined("V1")
        assert vkb.views_referencing("R") == ()


class TestSynchronizationBookkeeping:
    def test_apply_rewriting_advances_current(self, vkb):
        original = vkb.current("V1")
        new_view = original.replacing_relation("R", "T")
        rewriting = Rewriting(original, new_view, (), ExtentRelationship.EQUAL)
        record = vkb.apply_rewriting(rewriting)
        assert record.current.relation_names == ("T",)
        assert record.original.relation_names == ("R",)
        assert record.generations == 1

    def test_apply_to_dead_view_rejected(self, vkb):
        vkb.mark_undefined("V1")
        original = vkb.record("V1").original
        rewriting = Rewriting(original, original)
        with pytest.raises(WorkspaceError):
            vkb.apply_rewriting(rewriting)

    def test_history_accumulates(self, vkb):
        record = vkb.record("V1")
        for target in ("T", "U"):
            rewriting = Rewriting(
                record.current,
                record.current.replacing_relation(
                    record.current.relation_names[0], target
                ),
            )
            vkb.apply_rewriting(rewriting)
        assert record.generations == 2


class TestInvertedIndex:
    def _rewrite(self, vkb, name, text):
        rewriting = Rewriting(
            vkb.current(name),
            parse_view(text),
            (),
            ExtentRelationship.EQUAL,
        )
        return vkb.apply_rewriting(rewriting)

    def test_index_follows_rewritings(self, vkb):
        # V1 moves from R to T: the index forgets R, learns T.
        self._rewrite(vkb, "V1", "CREATE VIEW V1 AS SELECT T.A FROM T")
        assert vkb.views_referencing("R") == ()
        assert [r.name for r in vkb.views_referencing("T")] == ["V1"]

    def test_index_forgets_dropped_views(self, vkb):
        vkb.drop("V2")
        assert vkb.views_referencing("S") == ()

    def test_index_forgets_dead_views(self, vkb):
        vkb.mark_undefined("V2")
        assert vkb.views_referencing("S") == ()
        # V1 is untouched.
        assert [r.name for r in vkb.views_referencing("R")] == ["V1"]

    def test_index_order_is_definition_order(self, vkb):
        vkb.define(parse_view("CREATE VIEW V0 AS SELECT R.B FROM R"))
        assert [r.name for r in vkb.views_referencing("R")] == ["V1", "V0"]

    def test_shared_relation_counts_every_view(self, vkb):
        vkb.define(parse_view("CREATE VIEW V3 AS SELECT R.A, S.B FROM R, S"))
        assert [r.name for r in vkb.views_referencing("S")] == ["V2", "V3"]
        vkb.mark_undefined("V2")
        assert [r.name for r in vkb.views_referencing("S")] == ["V3"]
