"""Unit tests for the heuristic (beam-pruned) synchronizer."""

import pytest

from repro.errors import SynchronizationError
from repro.qc.model import QCModel
from repro.qc.params import TradeoffParameters
from repro.space.changes import DeleteRelation
from repro.sync.heuristic import HeuristicSynchronizer
from repro.sync.synchronizer import ViewSynchronizer
from repro.workloadgen.scenarios import build_cardinality_scenario


@pytest.fixture
def scenario():
    built = build_cardinality_scenario()
    built.space.delete_relation("R2")
    return built


CHANGE = DeleteRelation("IS1", "R2")


class TestBeamSelection:
    def test_invalid_beam_width(self, scenario):
        with pytest.raises(SynchronizationError):
            HeuristicSynchronizer(scenario.space.mkb, beam_width=0)

    def test_prunes_candidate_set(self, scenario):
        synchronizer = HeuristicSynchronizer(
            scenario.space.mkb, beam_width=2
        )
        outcome = synchronizer.synchronize_best(
            scenario.view, CHANGE, updated_relation="R1"
        )
        assert outcome.generated == 5
        assert outcome.evaluated == 2
        assert outcome.pruned_fraction == pytest.approx(0.6)

    def test_wide_beam_degenerates_to_exhaustive(self, scenario):
        synchronizer = HeuristicSynchronizer(
            scenario.space.mkb, beam_width=100
        )
        outcome = synchronizer.synchronize_best(
            scenario.view, CHANGE, updated_relation="R1"
        )
        assert outcome.evaluated == outcome.generated == 5
        assert outcome.pruned_fraction == 0.0


class TestAgreement:
    def test_wide_beam_matches_exhaustive_winner(self, scenario):
        params = TradeoffParameters()
        heuristic = HeuristicSynchronizer(
            scenario.space.mkb, params, beam_width=100
        )
        outcome = heuristic.synchronize_best(
            scenario.view, CHANGE, updated_relation="R1"
        )
        base = ViewSynchronizer(scenario.space.mkb)
        rewritings = base.synchronize(scenario.view, CHANGE)
        exhaustive = QCModel(scenario.space.mkb, params).best(
            rewritings, updated_relation="R1"
        )
        assert outcome.chosen.rewriting.view == exhaustive.rewriting.view

    def test_narrow_beam_can_miss_cost_heavy_winner(self, scenario):
        """The closest-size ordering keeps the beam near the original's
        cardinality, so the cost-heavy exhaustive winner (the *smallest*
        substitute, S1) falls outside a width-2 beam — the documented
        trade-off of pruning.  Widening the beam recovers it."""
        params = TradeoffParameters().with_quality_weight(0.5)
        narrow = HeuristicSynchronizer(
            scenario.space.mkb, params, beam_width=2
        ).synchronize_best(scenario.view, CHANGE, updated_relation="R1")
        assert "S1" not in narrow.chosen.rewriting.view.relation_names

        wide = HeuristicSynchronizer(
            scenario.space.mkb, params, beam_width=5
        ).synchronize_best(scenario.view, CHANGE, updated_relation="R1")
        assert "S1" in wide.chosen.rewriting.view.relation_names

    def test_no_candidates_raises(self, scenario):
        from repro.esql.parser import parse_view

        doomed = parse_view(
            "CREATE VIEW D AS SELECT R2.A, R2.B FROM R2"
        )
        synchronizer = HeuristicSynchronizer(scenario.space.mkb)
        with pytest.raises(SynchronizationError):
            synchronizer.synchronize_best(doomed, CHANGE)


class TestDeterminism:
    def test_same_inputs_same_choice(self, scenario):
        synchronizer = HeuristicSynchronizer(
            scenario.space.mkb, beam_width=2
        )
        first = synchronizer.synchronize_best(
            scenario.view, CHANGE, updated_relation="R1"
        )
        second = synchronizer.synchronize_best(
            scenario.view, CHANGE, updated_relation="R1"
        )
        assert first.chosen.rewriting.view == second.chosen.rewriting.view
