"""Unit tests for the legality auditor."""

import pytest

from repro.esql.parser import parse_view
from repro.misd.constraints import (
    PCConstraint,
    PCRelationship,
    RelationFragment,
)
from repro.relational.expressions import AttributeRef
from repro.sync.legality import check_legality, is_legal
from repro.sync.rewriting import (
    DropAttributeMove,
    DropConditionMove,
    DropRelationMove,
    ExtentRelationship,
    ReplaceAttributeMove,
    ReplaceRelationMove,
    Rewriting,
)


@pytest.fixture
def view():
    return parse_view(
        """
        CREATE VIEW V (VE = '~') AS
        SELECT R.A (AD = true, AR = true), R.B (AD = true), S.C
        FROM R (RD = true, RR = true), S
        WHERE (R.A = S.A) (CD = true, CR = true) AND (S.C > 5) (CD = true)
        """
    )


def pc(left="R", right="T", rel=PCRelationship.EQUIVALENT):
    return PCConstraint(
        RelationFragment(left, ("A", "B")),
        RelationFragment(right, ("A", "B")),
        rel,
    )


class TestDropLegality:
    def test_legal_attribute_drop(self, view):
        rewriting = Rewriting(
            view,
            view.dropping_select_item("A"),
            (DropAttributeMove("A", AttributeRef("A", "R")),),
            ExtentRelationship.EQUAL,
        )
        assert is_legal(rewriting)

    def test_indispensable_attribute_drop_illegal(self, view):
        rewriting = Rewriting(
            view,
            view.dropping_select_item("C"),
            (DropAttributeMove("C", AttributeRef("C", "S")),),
            ExtentRelationship.EQUAL,
        )
        report = check_legality(rewriting)
        assert not report.legal
        assert any("indispensable" in v for v in report.violations)

    def test_silent_drop_of_indispensable_output_detected(self, view):
        # Even without a recorded move, a missing AD=false output is flagged.
        rewriting = Rewriting(view, view.dropping_select_item("C"), ())
        assert not is_legal(rewriting)

    def test_legal_condition_drop(self, view):
        rewriting = Rewriting(
            view,
            view.dropping_where_item(1),
            (DropConditionMove(view.where[1].clause),),
            ExtentRelationship.SUPERSET,
        )
        assert is_legal(rewriting)

    def test_unknown_condition_drop_flagged(self, view):
        other = parse_view(
            "CREATE VIEW W AS SELECT R.A FROM R WHERE R.A > 99"
        )
        rewriting = Rewriting(
            view, view, (DropConditionMove(other.where[0].clause),)
        )
        assert not is_legal(rewriting)

    def test_relation_drop_requires_rd(self):
        strict = parse_view(
            "CREATE VIEW V AS SELECT R.A (AD = true), S.C "
            "FROM R, S WHERE (R.A = S.A) (CD = true)"
        )
        rewriting = Rewriting(
            strict,
            strict.dropping_relation("R"),
            (
                DropRelationMove("R"),
                DropAttributeMove("A", AttributeRef("A", "R")),
                DropConditionMove(strict.where[0].clause),
            ),
            ExtentRelationship.SUPERSET,
        )
        report = check_legality(rewriting)
        assert any("RD=false" in v for v in report.violations)


class TestReplacementLegality:
    def test_legal_relation_replacement(self, view):
        replaced = view.dropping_select_item("B").replacing_relation("R", "T")
        rewriting = Rewriting(
            view,
            replaced,
            (
                DropAttributeMove("B", AttributeRef("B", "R")),
                ReplaceRelationMove("R", "T", pc()),
            ),
            ExtentRelationship.EQUAL,
        )
        assert is_legal(rewriting)

    def test_non_replaceable_relation_flagged(self):
        strict = parse_view(
            "CREATE VIEW V AS SELECT R.A (AR = true) FROM R"
        )
        rewriting = Rewriting(
            strict,
            strict.replacing_relation("R", "T"),
            (ReplaceRelationMove("R", "T", pc()),),
        )
        report = check_legality(rewriting)
        assert any("RR=false" in v for v in report.violations)

    def test_surviving_non_replaceable_attribute_flagged(self, view):
        # R.B has AR=false; replacing R while keeping B is illegal.
        rewriting = Rewriting(
            view,
            view.replacing_relation("R", "T"),
            (ReplaceRelationMove("R", "T", pc()),),
        )
        report = check_legality(rewriting)
        assert any("R.B" in v and "AR=false" in v for v in report.violations)

    def test_dropped_attribute_not_double_flagged(self, view):
        replaced = view.dropping_select_item("B").replacing_relation("R", "T")
        rewriting = Rewriting(
            view,
            replaced,
            (
                DropAttributeMove("B", AttributeRef("B", "R")),
                ReplaceRelationMove("R", "T", pc()),
            ),
        )
        report = check_legality(rewriting)
        assert not any("R.B" in v for v in report.violations)

    def test_attribute_replacement_requires_ar(self):
        strict = parse_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        rewriting = Rewriting(
            strict,
            strict.replacing_attribute(
                AttributeRef("A", "R"), AttributeRef("A", "T")
            ),
            (
                ReplaceAttributeMove(
                    AttributeRef("A", "R"), AttributeRef("A", "T"), pc()
                ),
            ),
        )
        report = check_legality(rewriting)
        assert any("AR=false" in v for v in report.violations)


class TestVECompliance:
    def test_ve_equal_rejects_superset_rewriting(self):
        strict = parse_view(
            "CREATE VIEW V (VE = '=') AS SELECT R.A (AD = true, AR = true), "
            "R.B (AD = true) FROM R (RR = true)"
        )
        rewriting = Rewriting(
            strict,
            strict.dropping_select_item("B"),
            (DropAttributeMove("B", AttributeRef("B", "R")),),
            ExtentRelationship.SUPERSET,
        )
        report = check_legality(rewriting)
        assert any("VE" in v for v in report.violations)

    def test_ve_superset_accepts_superset(self):
        view = parse_view(
            "CREATE VIEW V (VE = '>=') AS SELECT R.A (AD = true, AR = true), "
            "R.B (AD = true) FROM R (RR = true)"
        )
        rewriting = Rewriting(
            view,
            view.dropping_select_item("B"),
            (DropAttributeMove("B", AttributeRef("B", "R")),),
            ExtentRelationship.SUPERSET,
        )
        assert is_legal(rewriting)

    def test_report_is_truthy_when_legal(self, view):
        report = check_legality(Rewriting(view, view))
        assert report
        assert report.violations == []
