"""The guard-railed optimizer pass: every transform earns its application.

ISSUE 8's contract: each transform is applied only when the EXPLAIN cost
model scores an improvement AND its soundness precondition is proven;
otherwise it is *refused with a recorded reason*.  Transforms are
plan-shape-only — extents stay bag-identical with ``optimize=True`` on
every engine.
"""

from collections import Counter

import pytest

from repro.config import EngineConfig, SystemConfig
from repro.errors import ConfigurationError
from repro.esql.evaluator import evaluate_view
from repro.esql.explain import explain_view
from repro.esql.parser import parse_view
from repro.misd.statistics import RelationStatistics, SpaceStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType
from repro.sync.optimizer import (
    PUSH_LOCAL,
    SEMI_PROBE,
    PlanHints,
    PlanOptimizer,
)


def string_schema(name, attrs):
    return Schema(
        name, [Attribute(a, AttributeType.STRING) for a in attrs]
    )


def customer_booking(booking_rows):
    return {
        "Customer": Relation(
            string_schema("Customer", ["Name", "City"]),
            [("ann", "nyc"), ("bob", "sfo"), ("cy", "nyc")],
        ),
        "Booking": Relation(
            string_schema("Booking", ["PName", "Dest"]), booking_rows
        ),
    }


SEMI_VIEW = parse_view(
    "CREATE VIEW V AS SELECT Customer.Name FROM Customer, Booking "
    "WHERE Customer.Name = Booking.PName"
)

#: Unique probe keys, and enough Booking rows that Customer drives.
UNIQUE_BOOKINGS = [
    ("ann", "asia"), ("bob", "europe"), ("cy", "x"), ("dina", "y"),
]
#: "ann" books twice: existence probing would lose a multiplicity.
DUPLICATE_BOOKINGS = [
    ("ann", "asia"), ("ann", "europe"), ("bob", "asia"), ("dina", "z"),
]

PUSH_VIEW = parse_view(
    "CREATE VIEW V AS SELECT Customer.Name, Booking.Dest "
    "FROM Customer, Booking "
    "WHERE Customer.Name = Booking.PName AND Booking.Dest = 'asia'"
)

#: Big enough that Booking stays the probed side of PUSH_VIEW while
#: carrying the local Dest condition — the pushdown site.
MANY_BOOKINGS = [("ann", "asia"), ("ann", "europe"), ("bob", "asia")] + [
    (f"p{i}", "asia" if i % 2 else "europe") for i in range(3, 10)
]


def assert_parity(view, relations):
    """optimize=True must be invisible in the extent, on every engine."""
    reference = evaluate_view(view, relations, config=EngineConfig())
    for config in (
        EngineConfig(optimize=True),
        EngineConfig(optimize=True, representation="columnar"),
        EngineConfig(engine="naive"),
    ):
        optimized = evaluate_view(view, relations, config=config)
        assert Counter(optimized.rows) == Counter(reference.rows)


class TestSemiJoinProbe:
    def test_applied_on_proven_unique_key(self):
        relations = customer_booking(UNIQUE_BOOKINGS)
        hints, report = PlanOptimizer().optimize(
            SEMI_VIEW, relations, EngineConfig(optimize=True)
        )
        (decision,) = report.decisions
        assert decision.transform == SEMI_PROBE
        assert decision.applied
        assert decision.cost_after < decision.cost_before
        assert hints.semi == frozenset({"Booking"})
        assert_parity(SEMI_VIEW, relations)

    def test_refused_on_duplicate_keys(self):
        relations = customer_booking(DUPLICATE_BOOKINGS)
        hints, report = PlanOptimizer().optimize(
            SEMI_VIEW, relations, EngineConfig(optimize=True)
        )
        (decision,) = report.decisions
        assert not decision.applied
        assert "multiplicities" in decision.reason
        assert hints.empty
        assert_parity(SEMI_VIEW, relations)

    def test_refused_without_an_extent_to_prove_against(self):
        schemas = {
            n: r.schema
            for n, r in customer_booking(UNIQUE_BOOKINGS).items()
        }
        statistics = SpaceStatistics(
            relations={
                "Customer": RelationStatistics(cardinality=3),
                "Booking": RelationStatistics(cardinality=4),
            }
        )
        hints, report = PlanOptimizer(statistics).optimize(
            SEMI_VIEW, None, EngineConfig(optimize=True), schemas=schemas
        )
        (decision,) = report.decisions
        assert not decision.applied
        assert "not-provable" in decision.reason
        assert hints.empty

    def test_refused_on_the_columnar_plane(self):
        relations = customer_booking(UNIQUE_BOOKINGS)
        hints, report = PlanOptimizer().optimize(
            SEMI_VIEW,
            relations,
            EngineConfig(optimize=True, representation="columnar"),
        )
        (decision,) = report.decisions
        assert not decision.applied
        assert "not-applicable" in decision.reason
        assert hints.empty

    def test_projected_relation_is_not_a_site(self):
        # Booking.Dest is selected: converting its probe to an existence
        # check would lose the output column, so no site exists at all.
        view = parse_view(
            "CREATE VIEW V AS SELECT Booking.Dest "
            "FROM Customer, Booking "
            "WHERE Customer.Name = Booking.PName"
        )
        relations = customer_booking(UNIQUE_BOOKINGS)
        _, report = PlanOptimizer().optimize(
            view, relations, EngineConfig(optimize=True)
        )
        assert all(d.transform != SEMI_PROBE for d in report.decisions)
        assert_parity(view, relations)

    def test_explain_marks_the_semi_step(self):
        relations = customer_booking(UNIQUE_BOOKINGS)
        plan = explain_view(
            SEMI_VIEW, relations, config=EngineConfig(optimize=True)
        )
        semi_steps = [s for s in plan.steps if s.semi]
        assert [s.relation for s in semi_steps] == ["Booking"]
        assert "semi index probe" in plan.to_text()


class TestPushLocalConditions:
    def test_applied_when_the_model_scores_improvement(self):
        relations = customer_booking(MANY_BOOKINGS)
        hints, report = PlanOptimizer().optimize(
            PUSH_VIEW, relations, EngineConfig(optimize=True)
        )
        (decision,) = report.decisions
        assert decision.transform == PUSH_LOCAL
        assert decision.applied
        assert decision.cost_after < decision.cost_before
        assert [str(c) for c in hints.pushdown["Booking"]] == [
            "Booking.Dest = 'asia'"
        ]
        assert_parity(PUSH_VIEW, relations)

    def test_refused_when_selectivity_keeps_every_row(self):
        # sigma=1.0: the prefilter rejects nothing, so prefiltering is
        # pure overhead and the guard must refuse the transform.
        relations = customer_booking(MANY_BOOKINGS)
        statistics = SpaceStatistics(
            relations={
                "Customer": RelationStatistics(cardinality=3),
                "Booking": RelationStatistics(
                    cardinality=10, selectivity=1.0
                ),
            }
        )
        hints, report = PlanOptimizer(statistics).optimize(
            PUSH_VIEW, relations, EngineConfig(optimize=True)
        )
        pushes = [
            d for d in report.decisions if d.transform == PUSH_LOCAL
        ]
        assert pushes and not any(d.applied for d in pushes)
        assert all(d.reason == "no-improvement" for d in pushes)
        assert not hints.pushdown
        assert_parity(PUSH_VIEW, relations)

    def test_pushed_clauses_surface_in_the_plan(self):
        relations = customer_booking(MANY_BOOKINGS)
        plan = explain_view(
            PUSH_VIEW, relations, config=EngineConfig(optimize=True)
        )
        pushed = [s for s in plan.steps if s.pushed]
        assert [s.relation for s in pushed] == ["Booking"]
        assert "pushed=[Booking.Dest = 'asia']" in plan.to_text()
        assert plan.optimizer is not None
        assert len(plan.optimizer.applied) == 1

    def test_columnar_pushdown_keeps_parity(self):
        relations = customer_booking(MANY_BOOKINGS)
        reference = evaluate_view(
            PUSH_VIEW, relations, config=EngineConfig()
        )
        columnar = evaluate_view(
            PUSH_VIEW,
            relations,
            config=EngineConfig(optimize=True, representation="columnar"),
        )
        assert Counter(columnar.rows) == Counter(reference.rows)


class TestGuardRails:
    def test_transforms_never_change_estimates(self):
        # Plan-shape-only: the cardinality estimates of the optimized
        # plan equal the unoptimized plan's, step for step.
        relations = customer_booking(MANY_BOOKINGS)
        plain = explain_view(PUSH_VIEW, relations, config=EngineConfig())
        tuned = explain_view(
            PUSH_VIEW, relations, config=EngineConfig(optimize=True)
        )
        assert [s.estimated_rows for s in plain.steps] == [
            s.estimated_rows for s in tuned.steps
        ]
        assert plain.estimated_rows == tuned.estimated_rows

    def test_stale_hints_are_ignored_not_trusted(self):
        # A hint naming a relation whose step no longer qualifies (here:
        # hand-forged semi on a projected relation) must be ignored by
        # the evaluator's structural re-check.
        relations = customer_booking(UNIQUE_BOOKINGS)
        view = parse_view(
            "CREATE VIEW V AS SELECT Booking.Dest "
            "FROM Customer, Booking "
            "WHERE Customer.Name = Booking.PName"
        )
        forged = PlanHints(pushdown={}, semi=frozenset({"Booking"}))
        reference = evaluate_view(view, relations, config=EngineConfig())
        # evaluate_view computes hints itself; forging is only reachable
        # through build_plan, whose annotation must also stay structural.
        from repro.esql.explain import build_plan

        plan = build_plan(view, relations, hints=forged)
        assert not any(s.semi for s in plan.steps)
        assert Counter(reference.rows) == Counter(
            evaluate_view(
                view, relations, config=EngineConfig(optimize=True)
            ).rows
        )

    def test_optimize_requires_the_indexed_engine(self):
        with pytest.raises(ConfigurationError, match="optimize"):
            EngineConfig(engine="naive", optimize=True)

    def test_optimize_round_trips_through_config_dicts(self):
        config = SystemConfig(engine=EngineConfig(optimize=True))
        clone = SystemConfig.from_dict(config.to_dict())
        assert clone.engine.optimize is True
        assert clone == config

    def test_empty_hints_property(self):
        assert PlanHints(pushdown={}, semi=frozenset()).empty
        assert not PlanHints(
            pushdown={}, semi=frozenset({"R"})
        ).empty
