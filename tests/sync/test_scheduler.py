"""Unit tests for the cost-aware synchronization scheduler."""

import threading

import pytest

from repro.config import ScheduleConfig
from repro.core.eve import EVESystem
from repro.errors import (
    ConfigurationError,
    EvaluationError,
    SynchronizationError,
)
from repro.esql.parser import parse_view
from repro.misd.statistics import RelationStatistics
from repro.qc.model import QCModel
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import (
    DeleteRelation,
    RenameAttribute,
    RenameRelation,
)
from repro.space.space import InformationSpace
from repro.sync.pipeline import SearchPolicy, StageCounters
from repro.sync.scheduler import (
    BatchWorkPlan,
    SynchronizationScheduler,
    ViewWorkItem,
    build_work_plan,
)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
def build_system(materialize=False):
    """Three relations with donors; V0/V1 share R0, V2 uses R1."""
    eve = EVESystem()
    eve.add_source("IS0")
    eve.add_source("IS1")
    for name in ("R0", "R1"):
        eve.register_relation(
            "IS0",
            Relation(Schema(name, ["A", "B"]), [(1, 10), (2, 20)]),
            RelationStatistics(cardinality=400, tuple_size=100),
        )
        eve.register_relation(
            "IS1",
            Relation(Schema(f"{name}M", ["A", "B"]), [(1, 10), (2, 20)]),
            RelationStatistics(cardinality=400, tuple_size=100),
        )
        eve.mkb.add_equivalence(name, f"{name}M", ["A", "B"])
    for index, relation in enumerate(["R0", "R0", "R1"]):
        eve.define_view(
            f"CREATE VIEW V{index} (VE = '~') AS "
            f"SELECT {relation}.A (AR = true), "
            f"{relation}.B (AD = true, AR = true) "
            f"FROM {relation} (RR = true)",
            materialize=materialize,
        )
    return eve


def fingerprint(eve):
    return [
        (record.name, record.alive, record.generations, record.current)
        for record in eve.vkb
    ]


class RecordingRuntime:
    """A fake SchedulerRuntime that records dispatch, returns nothing."""

    def __init__(self, fail_for=()):
        self.replayed = []
        self.threads = {}
        self.finalized = []
        self.adopted = []
        self.fail_for = set(fail_for)

    def replay_item(self, item, plan, policy=None):
        if item.view_name in self.fail_for:
            raise ValueError(f"injected failure for {item.view_name}")
        self.replayed.append((item.view_name, policy))
        self.threads[item.view_name] = threading.get_ident()
        return []

    def adopt_results(self, results):
        self.adopted.extend(results)

    def finalize_view(self, view_name):
        self.finalized.append(view_name)


def make_plan(rows, changes):
    """rows: (view_name, worklist_positions, cost_bound, definition_key)."""
    staged = [
        (
            name,
            order,
            tuple((position, changes[position]) for position in positions),
            bound,
            key,
        )
        for order, (name, positions, bound, key) in enumerate(rows)
    ]
    return build_work_plan(staged, changes)


CHANGES = [
    DeleteRelation("IS0", "R0"),
    DeleteRelation("IS0", "R1"),
    DeleteRelation("IS0", "R2"),
]


# ----------------------------------------------------------------------
# Plan construction
# ----------------------------------------------------------------------
class TestWorkPlan:
    def test_chain_groups_connect_shared_relations(self):
        plan = make_plan(
            [
                ("V0", (0,), 5.0, "k0"),
                ("V1", (0, 1), 1.0, "k1"),  # bridges R0 and R1
                ("V2", (1,), 3.0, "k2"),
                ("V3", (2,), 2.0, "k3"),
            ],
            CHANGES,
        )
        groups = plan.groups()
        by_view = {
            item.view_name: group.key
            for group in groups
            for item in group.items
        }
        assert by_view["V0"] == by_view["V1"] == by_view["V2"]
        assert by_view["V3"] != by_view["V0"]
        chained = next(g for g in groups if g.key == by_view["V0"])
        assert chained.cost_bound == 1.0
        assert [item.view_name for item in chained.items] == ["V0", "V1", "V2"]

    def test_items_keep_plan_order_and_positions(self):
        plan = make_plan(
            [("V1", (1,), 2.0, "a"), ("V0", (0,), 1.0, "b")], CHANGES
        )
        assert [item.view_name for item in plan.items] == ["V1", "V0"]
        assert plan.items[0].positions == (1,)
        assert plan.changes_on("R0") == ((0, CHANGES[0]),)

    def test_coalesce_key_pairs_definition_and_worklist(self):
        plan = make_plan(
            [
                ("V0", (0,), 1.0, "same"),
                ("V1", (0,), 1.0, "same"),
                ("V2", (0, 1), 1.0, "same"),
            ],
            CHANGES,
        )
        keys = {item.view_name: item.coalesce_key for item in plan.items}
        assert keys["V0"] == keys["V1"]
        assert keys["V2"] != keys["V0"]  # same definition, other worklist


# ----------------------------------------------------------------------
# Scheduler dispatch (probed through a fake runtime)
# ----------------------------------------------------------------------
class TestDispatch:
    def test_empty_plan_reports_empty(self):
        report = SynchronizationScheduler().execute(
            make_plan([], CHANGES), RecordingRuntime()
        )
        assert report.results == ()
        assert report.deferred == ()
        assert report.coalesced == 0

    def test_cost_order_dispatches_cheapest_first(self):
        runtime = RecordingRuntime()
        plan = make_plan(
            [
                ("V0", (0,), 9.0, "a"),
                ("V1", (1,), 1.0, "b"),
                ("V2", (2,), 4.0, "c"),
            ],
            CHANGES,
        )
        SynchronizationScheduler(ScheduleConfig(order="cost")).execute(plan, runtime)
        assert [name for name, _ in runtime.replayed] == ["V1", "V2", "V0"]
        SynchronizationScheduler(ScheduleConfig(order="plan")).execute(
            plan, runtime := RecordingRuntime()
        )
        assert [name for name, _ in runtime.replayed] == ["V0", "V1", "V2"]

    def test_chain_groups_never_split_across_workers(self):
        runtime = RecordingRuntime()
        plan = make_plan(
            [(f"V{i}", (i % 3,), float(i), f"k{i}") for i in range(12)],
            CHANGES,
        )
        SynchronizationScheduler(
            ScheduleConfig(executor="threads", max_workers=4)
        ).execute(plan, runtime)
        groups = plan.groups()
        assert len(groups) == 3
        for group in groups:
            workers = {
                runtime.threads[item.view_name] for item in group.items
            }
            assert len(workers) == 1

    def test_zero_budget_defers_everything(self):
        runtime = RecordingRuntime()
        plan = make_plan(
            [("V0", (0,), 1.0, "a"), ("V1", (1,), 2.0, "b")], CHANGES
        )
        report = SynchronizationScheduler(
            ScheduleConfig(budget=0.0, degrade="defer")
        ).execute(plan, runtime)
        assert runtime.replayed == []
        assert [d.view_name for d in report.deferred] == ["V0", "V1"]
        assert runtime.finalized == []  # deferred views keep stale extents
        assert report.counters.deferred == 2

    def test_zero_budget_degrades_to_first_legal(self):
        runtime = RecordingRuntime()
        plan = make_plan(
            [("V0", (0,), 1.0, "a"), ("V1", (1,), 2.0, "b")], CHANGES
        )
        report = SynchronizationScheduler(
            ScheduleConfig(budget=0.0, degrade="first_legal")
        ).execute(plan, runtime)
        assert [policy for _, policy in runtime.replayed] == [
            "first_legal",
            "first_legal",
        ]
        assert report.degraded_views == ("V0", "V1")
        assert report.deferred == ()

    @pytest.mark.parametrize("executor", ["serial", "threads"])
    def test_replay_exceptions_surface(self, executor):
        plan = make_plan(
            [("V0", (0,), 1.0, "a"), ("V1", (1,), 2.0, "b")], CHANGES
        )
        runtime = RecordingRuntime(fail_for={"V1"})
        scheduler = SynchronizationScheduler(ScheduleConfig(executor=executor, max_workers=2))
        with pytest.raises(ValueError, match="injected failure"):
            scheduler.execute(plan, runtime)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            ScheduleConfig(executor="rayon")
        with pytest.raises(ConfigurationError):
            ScheduleConfig(degrade="drop")
        with pytest.raises(ConfigurationError):
            ScheduleConfig(order="random")
        with pytest.raises(ConfigurationError):
            ScheduleConfig(budget=-1.0)
        with pytest.raises(ConfigurationError):
            ScheduleConfig(max_workers=0)


# ----------------------------------------------------------------------
# End-to-end through EVESystem
# ----------------------------------------------------------------------
class TestSystemIntegration:
    def test_empty_batch_is_a_noop(self):
        eve = build_system()
        assert eve.apply_changes([]) == []
        assert len(eve.last_schedule) == 1
        assert eve.last_schedule[0].results == ()

    def test_default_scheduler_matches_pre_scheduler_reference(self):
        batch = [
            DeleteRelation("IS0", "R0"),
            RenameAttribute("IS0", "R1", "A", "Alpha"),
        ]
        sequential = build_system(materialize=True)
        for change in batch:
            sequential.space.apply_change(change)
        scheduled = build_system(materialize=True)
        results = scheduled.apply_changes(batch)
        assert fingerprint(sequential) == fingerprint(scheduled)
        assert [r.view_name for r in results] == ["V0", "V1", "V2"]
        assert list(scheduled.synchronization_log) == results

    def test_per_view_timing_lands_in_counters(self):
        eve = build_system()
        results = eve.apply_changes([DeleteRelation("IS0", "R0")])
        assert results and all(
            r.counters is not None and r.counters.seconds > 0.0
            for r in results
        )
        report = eve.last_schedule[0]
        assert set(report.per_view_seconds) == {"V0", "V1"}
        assert report.wall_seconds > 0.0

    def test_coalescing_rebinds_identical_views_exactly(self):
        plain = build_system(materialize=True)
        plain.apply_changes([DeleteRelation("IS0", "R0")])
        coalesced = build_system(materialize=True)
        results = coalesced.apply_changes(
            [DeleteRelation("IS0", "R0")],
            scheduler=SynchronizationScheduler(ScheduleConfig(coalesce=True)),
        )
        assert coalesced.last_schedule[0].coalesced == 1
        assert fingerprint(plain) == fingerprint(coalesced)
        assert [(r.view_name, r.chosen.qc) for r in results] == [
            (r.view_name, r.chosen.qc)
            for r in plain.synchronization_log
        ]
        for view in ("V0", "V1"):
            assert sorted(coalesced.extent(view).rows) == sorted(
                plain.extent(view).rows
            )
            assert coalesced.vkb.current(view).name == view

    def test_where_order_variants_never_coalesce(self):
        # fingerprint_view (the assessment cache's) sorts WHERE
        # conjuncts; the coalesce key must NOT, or a follower would be
        # committed with the leader's clause order.
        def build_pair():
            eve = EVESystem()
            eve.add_source("IS0")
            eve.register_relation(
                "IS0",
                Relation(Schema("R", ["A", "B"]), [(1, 2), (1, 3)]),
                RelationStatistics(cardinality=400, tuple_size=100),
            )
            for name, where in (
                ("W1", "(R.A = 1) AND (R.B = 2)"),
                ("W2", "(R.B = 2) AND (R.A = 1)"),
            ):
                eve.define_view(
                    f"CREATE VIEW {name} (VE = '~') AS "
                    f"SELECT R.A (AR = true), R.B (AD = true, AR = true) "
                    f"FROM R (RR = true) WHERE {where}"
                )
            return eve

        change = [RenameAttribute("IS0", "R", "A", "A9")]
        reference = build_pair()
        reference.apply_changes(change)
        coalesced = build_pair()
        coalesced.apply_changes(
            change, scheduler=SynchronizationScheduler(ScheduleConfig(coalesce=True))
        )
        assert coalesced.last_schedule[0].coalesced == 0
        assert fingerprint(coalesced) == fingerprint(reference)
        # Each view keeps its own WHERE order, order-sensitively.
        assert coalesced.vkb.current("W1") != coalesced.vkb.current(
            "W2"
        ).renamed("W1")

    def test_degraded_batch_commits_first_legal_winners(self):
        eve = build_system()
        results = eve.apply_changes(
            [DeleteRelation("IS0", "R0")],
            scheduler=SynchronizationScheduler(ScheduleConfig(budget=0.0, degrade="first_legal")),
        )
        assert results
        for result in results:
            assert result.policy == SearchPolicy.first_legal()
            assert result.counters.degraded == 1
        assert eve.last_schedule[0].degraded_views == ("V0", "V1")

    def test_mid_batch_failure_keeps_sync_log_consistent_with_vkb(self):
        eve = build_system()
        original_search = eve.pipeline.search

        def failing_search(view, change, **kwargs):
            if view.name == "V1":
                raise SynchronizationError("injected search failure")
            return original_search(view, change, **kwargs)

        eve.pipeline.search = failing_search
        with pytest.raises(SynchronizationError, match="injected"):
            eve.apply_changes([DeleteRelation("IS0", "R0")])
        # V0 committed before the failure: the VKB evolved, and the
        # journal made sure the synchronization log saw it too.
        assert eve.generations("V0") == 1
        assert [r.view_name for r in eve.synchronization_log] == ["V0"]

    def test_completed_subbatch_reports_survive_later_failure(self):
        eve = build_system()
        original_search = eve.pipeline.search

        def failing_search(view, change, **kwargs):
            if isinstance(change, DeleteRelation) and view.name == "V1":
                raise SynchronizationError("injected delete failure")
            return original_search(view, change, **kwargs)

        eve.pipeline.search = failing_search
        # Rename-then-delete of the renamed relation is an identity
        # chain: apply_changes splits it into two scheduler executions.
        batch = [
            RenameRelation("IS0", "R0", "RX"),
            DeleteRelation("IS0", "RX"),
        ]
        with pytest.raises(SynchronizationError, match="injected"):
            eve.apply_changes(batch)
        # The first sub-batch's report (and any deferral records it
        # might carry) survives the second sub-batch's failure...
        assert len(eve.last_schedule) == 1
        assert [r.view_name for r in eve.last_schedule[0].results] == [
            "V0",
            "V1",
        ]
        # ...and every VKB commit made before the failure is logged.
        logged = [r.view_name for r in eve.synchronization_log]
        assert logged == ["V0", "V1", "V0"]

    def test_resume_deferred_consumes_its_records(self):
        eve = build_system()
        eve.apply_changes(
            [DeleteRelation("IS0", "R0")],
            scheduler=SynchronizationScheduler(ScheduleConfig(budget=0.0, degrade="defer")),
        )
        assert len(eve.resume_deferred()) == 2
        assert eve.resume_deferred() == []  # consumed, not re-replayed
        assert all(report.deferred == () for report in eve.last_schedule)

    def test_defer_and_resume_reaches_serial_outcome(self):
        eve = build_system(materialize=True)
        batch = [DeleteRelation("IS0", "R0")]
        results = eve.apply_changes(
            batch,
            scheduler=SynchronizationScheduler(ScheduleConfig(budget=0.0, degrade="defer")),
        )
        assert results == []
        assert eve.generations("V0") == 0  # untouched, stale definition
        resumed = eve.resume_deferred()
        reference = build_system(materialize=True)
        reference.apply_changes(batch)
        assert fingerprint(eve) == fingerprint(reference)
        assert [r.view_name for r in resumed] == ["V0", "V1"]
        assert sorted(eve.extent("V0").rows) == sorted(
            reference.extent("V0").rows
        )

    def test_work_plan_is_immutable(self):
        eve = build_system()
        eve.apply_changes([DeleteRelation("IS0", "R0")])
        plan = BatchWorkPlan(
            items=(
                ViewWorkItem("V", 0, ((0, CHANGES[0]),), 1.0, "k", ("d", (0,))),
            ),
            changes=(CHANGES[0],),
            by_relation={},
        )
        with pytest.raises(AttributeError):
            plan.items[0].cost_bound = 2.0  # frozen dataclass


# ----------------------------------------------------------------------
# Salvage bound + counters plumbing
# ----------------------------------------------------------------------
class TestSalvageBound:
    def test_multi_relation_views_cost_more_to_salvage(self):
        space = InformationSpace()
        space.add_source("IS0")
        for name in ("R", "S"):
            space.register_relation(
                "IS0",
                Relation(Schema(name, ["A", "B"])),
                RelationStatistics(cardinality=400, tuple_size=100),
            )
        model = QCModel(space.mkb)
        single = parse_view("CREATE VIEW V1 AS SELECT R.A FROM R")
        joined = parse_view(
            "CREATE VIEW V2 AS SELECT R.A FROM R, S WHERE R.A = S.A"
        )
        cheap = model.salvage_lower_bound(single, "R")
        rich = model.salvage_lower_bound(joined, "R")
        assert 0.0 < cheap < rich

    def test_unreferenced_update_relation_rejected(self):
        space = InformationSpace()
        space.add_source("IS0")
        space.register_relation(
            "IS0",
            Relation(Schema("R", ["A"])),
            RelationStatistics(cardinality=400, tuple_size=100),
        )
        model = QCModel(space.mkb)
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        with pytest.raises(EvaluationError):
            model.salvage_lower_bound(view, "ELSEWHERE")

    def test_counters_merge_scheduler_fields(self):
        merged = StageCounters(seconds=0.25, degraded=1).merged(
            StageCounters(seconds=0.5, deferred=2)
        )
        assert merged.seconds == 0.75
        assert merged.degraded == 1
        assert merged.deferred == 2
        assert "degraded=1" in str(merged)


# ----------------------------------------------------------------------
# Modeled-cost token bucket (budget_units)
# ----------------------------------------------------------------------
class TestUnitBudget:
    """budget_units is wall-clock-free: every assertion is deterministic."""

    def plan(self):
        return make_plan(
            [
                ("V0", (0,), 1.0, "a"),
                ("V1", (1,), 2.0, "b"),
                ("V2", (2,), 4.0, "c"),
            ],
            CHANGES,
        )

    def test_negative_budget_units_rejected(self):
        with pytest.raises(ConfigurationError, match="budget_units"):
            ScheduleConfig(budget_units=-0.5)

    def test_zero_units_defers_everything(self):
        runtime = RecordingRuntime()
        report = SynchronizationScheduler(
            ScheduleConfig(budget_units=0.0, degrade="defer")
        ).execute(self.plan(), runtime)
        assert runtime.replayed == []
        assert [d.view_name for d in report.deferred] == ["V0", "V1", "V2"]
        assert "cost units" in report.deferred[0].reason
        assert report.units_spent == 0.0
        assert report.budget_units == 0.0

    def test_bucket_admits_cheapest_views_first(self):
        # Cost order dispatches V0 (debit 1.0) then V1 (debit 2.0);
        # the bucket is then exactly exhausted, so V2 degrades.
        runtime = RecordingRuntime()
        report = SynchronizationScheduler(
            ScheduleConfig(budget_units=3.0, degrade="first_legal")
        ).execute(self.plan(), runtime)
        assert [
            (name, policy) for name, policy in runtime.replayed
        ] == [("V0", None), ("V1", None), ("V2", "first_legal")]
        assert report.degraded_views == ("V2",)
        assert report.units_spent == 3.0

    def test_bucket_spans_chain_groups_not_items(self):
        # Views sharing a chain group dispatch (and debit) together.
        runtime = RecordingRuntime()
        plan = make_plan(
            [("V0", (0,), 1.0, "a"), ("V1", (0,), 2.0, "b")], CHANGES
        )
        report = SynchronizationScheduler(
            ScheduleConfig(budget_units=1.5, degrade="defer")
        ).execute(plan, runtime)
        assert [name for name, _ in runtime.replayed] == ["V0", "V1"]
        assert report.deferred == ()
        assert report.units_spent == 3.0

    def test_unpriceable_views_debit_nothing(self):
        runtime = RecordingRuntime()
        plan = make_plan(
            [("V0", (0,), float("inf"), "a"), ("V1", (1,), 1.0, "b")],
            CHANGES,
        )
        report = SynchronizationScheduler(
            ScheduleConfig(budget_units=10.0, degrade="defer")
        ).execute(plan, runtime)
        assert report.deferred == ()
        assert report.units_spent == 1.0

    def test_zero_units_defer_and_resume_reaches_serial_outcome(self):
        eve = build_system(materialize=True)
        batch = [DeleteRelation("IS0", "R0")]
        results = eve.apply_changes(
            batch,
            scheduler=SynchronizationScheduler(ScheduleConfig(budget_units=0.0, degrade="defer")),
        )
        assert results == []
        assert eve.resume_deferred() != []
        reference = build_system(materialize=True)
        reference.apply_changes(batch)
        assert fingerprint(eve) == fingerprint(reference)
        assert sorted(eve.extent("V0").rows) == sorted(
            reference.extent("V0").rows
        )

    def test_partial_bucket_through_the_system_is_deterministic(self):
        # A tiny bucket admits exactly the first (cheapest-to-salvage)
        # chain group — dispatch checks the bucket *before* debiting —
        # and parks the rest; resuming reaches the serial outcome.
        eve = build_system(materialize=True)
        batch = [DeleteRelation("IS0", "R0"), DeleteRelation("IS0", "R1")]
        eve.apply_changes(
            batch,
            scheduler=SynchronizationScheduler(ScheduleConfig(budget_units=0.5, degrade="defer")),
        )
        report = eve.last_schedule[0]
        dispatched = {result.view_name for result in report.results}
        parked = {record.view_name for record in report.deferred}
        # Exactly one chain group ran: either R1's lone view or R0's
        # pair (cost order picks the cheaper bound), never a mix.
        assert dispatched in ({"V2"}, {"V0", "V1"})
        assert parked == {"V0", "V1", "V2"} - dispatched
        assert report.units_spent > 0.5
        assert "cost units" in report.deferred[0].reason
        resumed = eve.resume_deferred()
        assert {result.view_name for result in resumed} == parked
        reference = build_system(materialize=True)
        reference.apply_changes(batch)
        assert fingerprint(eve) == fingerprint(reference)
