"""Unit tests for rewriting provenance and the extent-relationship lattice."""

import pytest

from repro.esql.params import ViewExtent
from repro.esql.parser import parse_view
from repro.misd.constraints import PCRelationship
from repro.relational.expressions import AttributeRef
from repro.sync.rewriting import (
    DropAttributeMove,
    DropRelationMove,
    ExtentRelationship,
    Rewriting,
    combine_extent,
)

E = ExtentRelationship


class TestComposition:
    def test_equal_is_identity(self):
        for relationship in E:
            assert E.EQUAL.compose(relationship) is relationship
            assert relationship.compose(E.EQUAL) is relationship

    def test_same_direction_reinforces(self):
        assert E.SUPERSET.compose(E.SUPERSET) is E.SUPERSET
        assert E.SUBSET.compose(E.SUBSET) is E.SUBSET

    def test_opposite_directions_give_unknown(self):
        assert E.SUPERSET.compose(E.SUBSET) is E.UNKNOWN
        assert E.SUBSET.compose(E.SUPERSET) is E.UNKNOWN

    def test_unknown_absorbs(self):
        assert E.UNKNOWN.compose(E.SUPERSET) is E.UNKNOWN
        assert E.SUBSET.compose(E.UNKNOWN) is E.UNKNOWN

    def test_combine_extent_folds(self):
        assert combine_extent([E.EQUAL, E.SUPERSET, E.SUPERSET]) is E.SUPERSET
        assert combine_extent([]) is E.EQUAL


class TestVECompliance:
    def test_any_accepts_everything(self):
        for relationship in E:
            assert relationship.satisfies(ViewExtent.ANY)

    def test_equal_requires_equal(self):
        assert E.EQUAL.satisfies(ViewExtent.EQUAL)
        for relationship in (E.SUPERSET, E.SUBSET, E.UNKNOWN):
            assert not relationship.satisfies(ViewExtent.EQUAL)

    def test_superset_ve(self):
        assert E.EQUAL.satisfies(ViewExtent.SUPERSET)
        assert E.SUPERSET.satisfies(ViewExtent.SUPERSET)
        assert not E.SUBSET.satisfies(ViewExtent.SUPERSET)
        assert not E.UNKNOWN.satisfies(ViewExtent.SUPERSET)

    def test_subset_ve(self):
        assert E.SUBSET.satisfies(ViewExtent.SUBSET)
        assert not E.SUPERSET.satisfies(ViewExtent.SUBSET)


class TestFromPC:
    def test_replacing_with_superset_relation_widens(self):
        # R ⊆ T, T replaces R -> the view extent grows.
        assert E.from_pc(PCRelationship.SUBSET) is E.SUPERSET

    def test_replacing_with_subset_relation_narrows(self):
        assert E.from_pc(PCRelationship.SUPERSET) is E.SUBSET

    def test_equivalent_preserves(self):
        assert E.from_pc(PCRelationship.EQUIVALENT) is E.EQUAL


class TestRewritingBundle:
    @pytest.fixture
    def rewriting(self):
        original = parse_view(
            "CREATE VIEW V AS SELECT R.A (AD = true), R.B FROM R (RD = true), S "
            "WHERE R.A = S.A"
        )
        view = original.dropping_select_item("A")
        moves = (DropAttributeMove("A", AttributeRef("A", "R")),)
        return Rewriting(original, view, moves, E.EQUAL)

    def test_preserved_and_dropped_outputs(self, rewriting):
        assert rewriting.preserved_outputs() == ("B",)
        assert rewriting.dropped_outputs() == ("A",)

    def test_identity_detection(self, rewriting):
        assert not rewriting.is_identity
        identity = Rewriting(rewriting.original, rewriting.original)
        assert identity.is_identity
        assert identity.describe().endswith("unchanged")

    def test_describe_lists_moves(self, rewriting):
        text = rewriting.describe()
        assert "drop attribute R.A" in text
        assert "equal" in text

    def test_renamed(self, rewriting):
        renamed = rewriting.renamed("V1")
        assert renamed.view.name == "V1"
        assert renamed.original.name == "V"
        assert renamed.moves == rewriting.moves

    def test_move_descriptions(self):
        assert "drop relation R" in DropRelationMove("R").describe()
