"""Unit tests for the view synchronizer's rewriting generation."""

import pytest

from repro.esql.parser import parse_view
from repro.relational.expressions import AttributeRef
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import (
    AddAttribute,
    DeleteAttribute,
    DeleteRelation,
    RenameAttribute,
    RenameRelation,
)
from repro.space.space import InformationSpace
from repro.sync.legality import is_legal
from repro.sync.rewriting import ExtentRelationship
from repro.sync.synchronizer import ViewSynchronizer
from repro.relational.schema import Attribute


@pytest.fixture
def space():
    sp = InformationSpace()
    for source, schema in [
        ("IS1", Schema("R", ["A", "B"])),
        ("IS2", Schema("S", ["A", "C"])),
        ("IS3", Schema("T", ["A", "D"])),
        ("IS4", Schema("U", ["A", "B"])),
    ]:
        sp.add_source(source)
        sp.register_relation(source, Relation(schema))
    return sp


@pytest.fixture
def synchronizer(space):
    return ViewSynchronizer(space.mkb)


class TestAffectedness:
    def test_unreferenced_relation_not_affected(self, synchronizer):
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        assert not synchronizer.is_affected(view, DeleteRelation("IS2", "S"))

    def test_delete_relation_affects(self, synchronizer):
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        assert synchronizer.is_affected(view, DeleteRelation("IS1", "R"))

    def test_delete_unused_attribute_not_affected(self, synchronizer):
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        assert not synchronizer.is_affected(
            view, DeleteAttribute("IS1", "R", "B")
        )

    def test_delete_attribute_used_in_where_affects(self, synchronizer):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R WHERE R.B > 1"
        )
        assert synchronizer.is_affected(view, DeleteAttribute("IS1", "R", "B"))

    def test_adds_never_affect(self, synchronizer):
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        assert not synchronizer.is_affected(
            view, AddAttribute("IS1", "R", new_attribute=Attribute("Z"))
        )

    def test_unaffected_view_yields_identity(self, synchronizer):
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        results = synchronizer.synchronize(view, DeleteRelation("IS2", "S"))
        assert len(results) == 1
        assert results[0].is_identity


class TestRenames:
    def test_rename_relation(self, space, synchronizer):
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R WHERE R.B > 1")
        space.rename_relation("R", "R9")
        results = synchronizer.synchronize(
            view, RenameRelation("IS1", "R", "R9")
        )
        assert len(results) == 1
        rewriting = results[0]
        assert rewriting.view.relation_names == ("R9",)
        assert str(rewriting.view.where[0].clause) == "R9.B > 1"
        assert rewriting.extent_relationship is ExtentRelationship.EQUAL
        assert is_legal(rewriting)

    def test_rename_attribute_keeps_interface(self, space, synchronizer):
        view = parse_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        space.rename_attribute("R", "A", "A9")
        results = synchronizer.synchronize(
            view, RenameAttribute("IS1", "R", "A", "A9")
        )
        rewriting = results[0]
        # The source changed but the output name is pinned via the alias.
        assert rewriting.view.interface == ("A", "B")
        assert rewriting.view.select[0].ref == AttributeRef("A9", "R")


class TestDeleteAttribute:
    def test_drop_move_when_dispensable(self, space, synchronizer):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A (AD = true), R.B FROM R"
        )
        space.delete_attribute("R", "A")
        results = synchronizer.synchronize(
            view, DeleteAttribute("IS1", "R", "A")
        )
        drops = [r for r in results if r.view.interface == ("B",)]
        assert len(drops) == 1
        assert drops[0].extent_relationship is ExtentRelationship.EQUAL

    def test_no_drop_move_when_indispensable(self, space, synchronizer):
        view = parse_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        space.delete_attribute("R", "A")
        results = synchronizer.synchronize(
            view, DeleteAttribute("IS1", "R", "A")
        )
        assert all("A" in r.view.interface for r in results) or results == []

    def test_dropping_condition_widens_extent(self, space, synchronizer):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R WHERE (R.B > 1) (CD = true)"
        )
        space.delete_attribute("R", "B")
        results = synchronizer.synchronize(
            view, DeleteAttribute("IS1", "R", "B")
        )
        assert len(results) == 1
        assert results[0].extent_relationship is ExtentRelationship.SUPERSET
        assert len(results[0].view.where) == 0

    def test_attribute_replacement_within_view(self, space, synchronizer):
        # T is already in the view; its D column can stand in for R.B.
        space.mkb.add_equivalence("R", "T", None) if False else None
        from repro.misd.constraints import (
            PCConstraint,
            PCRelationship,
            RelationFragment,
        )
        space.mkb.add_pc_constraint(
            PCConstraint(
                RelationFragment("R", ("B",)),
                RelationFragment("T", ("D",)),
                PCRelationship.EQUIVALENT,
            )
        )
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A, R.B (AR = true) FROM R, T "
            "WHERE R.A = T.A"
        )
        space.delete_attribute("R", "B")
        results = synchronizer.synchronize(
            view, DeleteAttribute("IS1", "R", "B")
        )
        in_view = [
            r
            for r in results
            if r.view.select_item("B").ref == AttributeRef("D", "T")
        ]
        assert len(in_view) == 1
        assert in_view[0].view.relation_names == ("R", "T")

    def test_attribute_replacement_joins_donor_in(self, space, synchronizer):
        from repro.misd.constraints import (
            JoinConstraint,
            PCConstraint,
            PCRelationship,
            RelationFragment,
        )
        from repro.esql.parser import parse_condition_clause
        from repro.relational.expressions import Condition

        space.mkb.add_pc_constraint(
            PCConstraint(
                RelationFragment("R", ("B",)),
                RelationFragment("S", ("C",)),
                PCRelationship.EQUIVALENT,
            )
        )
        space.mkb.add_join_constraint(
            JoinConstraint(
                "S", "T", Condition([parse_condition_clause("S.A = T.A")])
            )
        )
        view = parse_view(
            "CREATE VIEW V AS SELECT T.D, R.B (AR = true) FROM R, T "
            "WHERE R.A = T.A"
        )
        space.delete_attribute("R", "B")
        results = synchronizer.synchronize(
            view, DeleteAttribute("IS1", "R", "B")
        )
        joined = [r for r in results if "S" in r.view.relation_names]
        assert joined
        rewriting = joined[0]
        assert rewriting.view.select_item("B").ref == AttributeRef("C", "S")
        assert any(
            str(item.clause) == "S.A = T.A" for item in rewriting.view.where
        )
        # Joining a carrier cannot be proven lossless.
        assert rewriting.extent_relationship is ExtentRelationship.UNKNOWN


class TestDeleteRelation:
    def test_drop_relation_move(self, space, synchronizer):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A (AD = true), S.C "
            "FROM R (RD = true), S WHERE (R.A = S.A) (CD = true)"
        )
        space.delete_relation("R")
        results = synchronizer.synchronize(view, DeleteRelation("IS1", "R"))
        drops = [r for r in results if r.view.relation_names == ("S",)]
        assert len(drops) == 1
        assert drops[0].extent_relationship is ExtentRelationship.SUPERSET

    def test_replacement_via_pc(self, space, synchronizer):
        space.mkb.add_equivalence("R", "U", ["A", "B"])
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A (AR = true), R.B (AR = true) "
            "FROM R (RR = true)"
        )
        space.delete_relation("R")
        results = synchronizer.synchronize(view, DeleteRelation("IS1", "R"))
        assert len(results) == 1
        rewriting = results[0]
        assert rewriting.view.relation_names == ("U",)
        assert rewriting.extent_relationship is ExtentRelationship.EQUAL
        assert rewriting.view.interface == ("A", "B")

    def test_replacement_with_attribute_translation(self, space, synchronizer):
        from repro.misd.constraints import (
            PCConstraint,
            PCRelationship,
            RelationFragment,
        )
        space.mkb.add_pc_constraint(
            PCConstraint(
                RelationFragment("R", ("A",)),
                RelationFragment("S", ("C",)),
                PCRelationship.SUBSET,
            )
        )
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A (AR = true) FROM R (RR = true)"
        )
        space.delete_relation("R")
        results = synchronizer.synchronize(view, DeleteRelation("IS1", "R"))
        assert len(results) == 1
        rewriting = results[0]
        assert rewriting.view.select_item("A").ref == AttributeRef("C", "S")
        assert rewriting.extent_relationship is ExtentRelationship.SUPERSET

    def test_partial_coverage_drops_dispensable_rest(self, space, synchronizer):
        # PC covers only A; B is dispensable so it gets dropped alongside.
        space.mkb.add_containment("R", "S", ["A"])
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A (AD = true, AR = true), "
            "R.B (AD = true) FROM R (RR = true)"
        )
        space.delete_relation("R")
        results = synchronizer.synchronize(view, DeleteRelation("IS1", "R"))
        replacement = [r for r in results if r.view.relation_names == ("S",)]
        assert len(replacement) == 1
        assert replacement[0].view.interface == ("A",)

    def test_partial_coverage_blocked_by_indispensable_rest(
        self, space, synchronizer
    ):
        space.mkb.add_containment("R", "S", ["A"])
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A (AR = true), R.B FROM R (RR = true)"
        )
        space.delete_relation("R")
        results = synchronizer.synchronize(view, DeleteRelation("IS1", "R"))
        assert results == []  # B cannot be dropped nor covered

    def test_ve_filter_rejects_wrong_direction(self, space, synchronizer):
        # VE = '<=' (subset) but the only PC gives a superset rewriting.
        space.mkb.add_containment("R", "U", ["A", "B"])
        view = parse_view(
            "CREATE VIEW V (VE = '<=') AS SELECT R.A (AR = true), "
            "R.B (AR = true) FROM R (RR = true)"
        )
        space.delete_relation("R")
        results = synchronizer.synchronize(view, DeleteRelation("IS1", "R"))
        assert results == []

    def test_all_results_are_legal(self, space, synchronizer):
        space.mkb.add_containment("R", "S", ["A"])
        space.mkb.add_equivalence("R", "U", ["A", "B"])
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A (AD = true, AR = true), "
            "R.B (AD = true, AR = true) FROM R (RD = true, RR = true), T "
            "WHERE (R.A = T.A) (CD = true, CR = true)"
        )
        space.delete_relation("R")
        results = synchronizer.synchronize(view, DeleteRelation("IS1", "R"))
        assert results
        assert all(is_legal(r) for r in results)


class TestDominatedSpectrum:
    def test_spectrum_adds_inferior_variants(self, space, synchronizer):
        space.mkb.add_equivalence("R", "U", ["A", "B"])
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A (AD = true, AR = true), "
            "R.B (AD = true, AR = true) FROM R (RR = true)"
        )
        space.delete_relation("R")
        base = synchronizer.synchronize(view, DeleteRelation("IS1", "R"))
        spectrum = synchronizer.synchronize(
            view, DeleteRelation("IS1", "R"), include_dominated=True
        )
        assert len(spectrum) > len(base)
        interfaces = {r.view.interface for r in spectrum}
        assert ("A",) in interfaces and ("B",) in interfaces

    def test_spectrum_results_deduplicated(self, space, synchronizer):
        space.mkb.add_equivalence("R", "U", ["A", "B"])
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A (AD = true, AR = true), "
            "R.B (AD = true, AR = true) FROM R (RR = true)"
        )
        space.delete_relation("R")
        spectrum = synchronizer.synchronize(
            view, DeleteRelation("IS1", "R"), include_dominated=True
        )
        views = [r.view for r in spectrum]
        assert len(views) == len(set(views))
