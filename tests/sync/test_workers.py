"""Persistent-worker pool over the sharded VKB: lifecycle and parity.

The workers executor's contract beyond plain outcome parity (which
``tests/property/test_scheduler_parity.py`` pins): deterministic shard
routing, warm-pool reuse without snapshot re-shipping, delta-driven
mirror consistency, drift detection, and failure semantics — a crash
mid-group surfaces an exception naming the failing view, the pool
recycles, and the next batch on the same system re-bootstraps and
commits the serial outcome.
"""

import pytest

from repro import (
    EVESystem,
    ShardRebalanced,
    SystemConfig,
    WorkerRecycled,
)
from repro.config import ScheduleConfig
from repro.errors import SynchronizationError
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import (
    DeleteRelation,
    RenameAttribute,
    RenameRelation,
)
from repro.sync.workers import (
    FAULT_ENV,
    _dedupe_rows,
    _outcomes_from_rows,
    relation_shard,
    view_home_shard,
)


def build_system(config=None):
    """Three mirrored relations, five views spread over them."""
    eve = EVESystem(config=config)
    eve.add_source("IS0")
    eve.add_source("IS1")
    for name in ("R0", "R1", "R2"):
        eve.register_relation(
            "IS0",
            Relation(Schema(name, ["A", "B"]), [(1, 10), (2, 20)]),
            RelationStatistics(cardinality=400, tuple_size=100),
        )
        eve.register_relation(
            "IS1",
            Relation(Schema(f"{name}M", ["A", "B"]), [(1, 10), (2, 20)]),
            RelationStatistics(cardinality=400, tuple_size=100),
        )
        eve.mkb.add_equivalence(name, f"{name}M", ["A", "B"])
    for index, relation in enumerate(["R0", "R0", "R1", "R2", "R1"]):
        eve.define_view(
            f"CREATE VIEW V{index} (VE = '~') AS "
            f"SELECT {relation}.A (AR = true), "
            f"{relation}.B (AD = true, AR = true) "
            f"FROM {relation} (RR = true)",
            materialize=False,
        )
    return eve


def fingerprint(eve):
    return [
        (record.name, record.alive, record.generations, record.current)
        for record in eve.vkb
    ]


CHANGES = [
    RenameAttribute("IS0", "R0", "A", "A2"),
    DeleteRelation("IS0", "R1"),
]


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
class TestRouting:
    def test_relation_shard_is_deterministic_and_in_range(self):
        for shards in (1, 2, 3, 7):
            for name in ("R0", "R1", "Donor3_1", "Mirror0"):
                home = relation_shard(name, shards)
                assert 0 <= home < shards
                assert home == relation_shard(name, shards)

    def test_single_shard_owns_everything(self):
        assert relation_shard("anything", 1) == 0

    def test_view_home_follows_the_first_relation(self):
        eve = build_system()
        record = next(iter(eve.vkb))
        first = record.current.relation_names[0]
        assert view_home_shard(record.current, 4) == relation_shard(
            first, 4
        )


# ----------------------------------------------------------------------
# Warm-pool reuse
# ----------------------------------------------------------------------
class TestWarmPool:
    def test_warm_batches_reuse_workers_and_ship_no_snapshot(self):
        serial = build_system()
        serial.apply_changes(list(CHANGES))
        serial.apply_changes([RenameRelation("IS0", "R2", "R2X")])
        reference = fingerprint(serial)

        eve = build_system(SystemConfig.sharded(2))
        rebalances = []
        eve.subscribe(ShardRebalanced, rebalances.append)
        try:
            eve.apply_changes(list(CHANGES))
            assert all(
                report.executor == "workers"
                for report in eve.last_schedule
            )
            cold = [
                dispatch
                for report in eve.last_schedule
                for dispatch in report.shards
            ]
            assert sum(d.snapshot_bytes for d in cold) > 0
            first_pids = dict(eve.scheduler._worker_pool.worker_pids)
            assert len(first_pids) == 2

            eve.apply_changes([RenameRelation("IS0", "R2", "R2X")])
            assert fingerprint(eve) == reference
            # Same processes, no re-bootstrap, zero snapshot bytes.
            assert dict(eve.scheduler._worker_pool.worker_pids) == first_pids
            warm = [
                dispatch
                for report in eve.last_schedule
                for dispatch in report.shards
            ]
            assert warm and all(d.snapshot_bytes == 0 for d in warm)
            assert all(d.bytes_shipped > 0 for d in warm)
            assert [event.reason for event in rebalances] == ["bootstrap"]
        finally:
            eve.close()

    def test_dispatch_accounting_reaches_the_system_report(self):
        eve = build_system(SystemConfig.sharded(2))
        try:
            eve.apply_changes(list(CHANGES))
            payload = eve.last_report.to_dict()
            rows = payload["schedule"]["shards"]
            assert rows == sorted(rows, key=lambda row: row["shard"])
            assert sum(row["views"] for row in rows) > 0
            batches = payload["schedule"]["batches"]
            assert all(batch["shards"] for batch in batches)
        finally:
            eve.close()

    def test_close_stops_the_fleet(self):
        eve = build_system(SystemConfig.sharded(2))
        eve.apply_changes([RenameAttribute("IS0", "R0", "A", "A2")])
        pool = eve.scheduler._worker_pool
        assert pool.worker_pids
        eve.close()
        assert pool.worker_pids == {}


# ----------------------------------------------------------------------
# Drift: out-of-band VKB/MKB mutation between batches
# ----------------------------------------------------------------------
class TestDrift:
    def test_out_of_band_define_view_forces_rebootstrap(self):
        eve = build_system(SystemConfig.sharded(2))
        rebalances = []
        eve.subscribe(ShardRebalanced, rebalances.append)
        try:
            eve.apply_changes([RenameAttribute("IS0", "R0", "A", "A2")])
            eve.define_view(
                "CREATE VIEW VX (VE = '~') AS SELECT R1.A (AR = true), "
                "R1.B (AD = true, AR = true) FROM R1 (RR = true)",
                materialize=False,
            )
            eve.apply_changes([DeleteRelation("IS0", "R1")])
            assert [event.reason for event in rebalances] == [
                "bootstrap",
                "drift",
            ]
        finally:
            eve.close()

        serial = build_system()
        serial.apply_changes([RenameAttribute("IS0", "R0", "A", "A2")])
        serial.define_view(
            "CREATE VIEW VX (VE = '~') AS SELECT R1.A (AR = true), "
            "R1.B (AD = true, AR = true) FROM R1 (RR = true)",
            materialize=False,
        )
        serial.apply_changes([DeleteRelation("IS0", "R1")])
        assert fingerprint(eve) == fingerprint(serial)

    def test_out_of_band_constraint_add_forces_rebootstrap(self):
        # The MKB blind spot: adding a constraint between batches
        # changes rewriting routes without touching VKB version or
        # relation names.  The worker mirrors must not keep searching
        # against the stale constraint set.
        eve = build_system(SystemConfig.sharded(2))
        rebalances = []
        eve.subscribe(ShardRebalanced, rebalances.append)
        try:
            eve.apply_changes([RenameAttribute("IS0", "R0", "A", "A2")])
            # A new route between relations the mirrors already hold:
            # no VKB bump, no relation-name change — only the
            # constraint fingerprint can catch this.
            eve.mkb.add_containment("R1", "R2M", ["A", "B"])
            eve.apply_changes([DeleteRelation("IS0", "R1")])
            assert [event.reason for event in rebalances] == [
                "bootstrap",
                "mkb-drift",
            ]
        finally:
            eve.close()

        serial = build_system()
        serial.apply_changes([RenameAttribute("IS0", "R0", "A", "A2")])
        serial.mkb.add_containment("R1", "R2M", ["A", "B"])
        serial.apply_changes([DeleteRelation("IS0", "R1")])
        assert fingerprint(eve) == fingerprint(serial)

    def test_in_batch_evolution_does_not_false_drift(self):
        # Capability-change batches evolve the parent MKB (renames
        # rewrite live constraints) — that must NOT read as drift, or
        # every warm batch would re-ship snapshots.
        eve = build_system(SystemConfig.sharded(2))
        rebalances = []
        eve.subscribe(ShardRebalanced, rebalances.append)
        try:
            eve.apply_changes([RenameAttribute("IS0", "R0", "A", "A2")])
            eve.apply_changes([RenameRelation("IS0", "R2", "R2X")])
            assert [event.reason for event in rebalances] == ["bootstrap"]
        finally:
            eve.close()


# ----------------------------------------------------------------------
# Failure semantics
# ----------------------------------------------------------------------
class TestCrashLifecycle:
    def test_crash_names_view_recycles_and_recovers(self, monkeypatch):
        eve = build_system(SystemConfig.sharded(2))
        events = []
        eve.subscribe(ShardRebalanced, events.append)
        eve.subscribe(WorkerRecycled, events.append)
        try:
            monkeypatch.setenv(FAULT_ENV, "V2")
            with pytest.raises(SynchronizationError, match="V2"):
                eve.apply_changes([DeleteRelation("IS0", "R1")])
            monkeypatch.delenv(FAULT_ENV)
            recycled = [
                event for event in events
                if isinstance(event, WorkerRecycled)
            ]
            assert any(event.reason == "crash" for event in recycled)
            assert eve.scheduler._worker_pool.worker_pids == {}

            # The next batch on the same system re-bootstraps a fresh
            # fleet and commits the serial outcome for its views.
            events.clear()
            eve.apply_changes([RenameAttribute("IS0", "R0", "A", "A2")])
            reboots = [
                event for event in events
                if isinstance(event, ShardRebalanced)
            ]
            assert reboots and reboots[0].reason == "recycle"
        finally:
            eve.close()

        # Serial reference for the recovery batch: the renamed views'
        # records must match a serial system that ran the same rename
        # (the crashed delete's syncs were lost in both worlds — the
        # exception propagated before anything was adopted).
        serial = build_system()
        serial.apply_changes([RenameAttribute("IS0", "R0", "A", "A2")])
        recovered = {
            record.name: (record.alive, record.current)
            for record in eve.vkb
            if record.name in ("V0", "V1")
        }
        expected = {
            record.name: (record.alive, record.current)
            for record in serial.vkb
            if record.name in ("V0", "V1")
        }
        assert recovered == expected

    def test_nothing_commits_when_any_shard_fails(self, monkeypatch):
        eve = build_system(SystemConfig.sharded(2))
        before = fingerprint(eve)
        try:
            monkeypatch.setenv(FAULT_ENV, "V2")
            with pytest.raises(SynchronizationError):
                eve.apply_changes([DeleteRelation("IS0", "R1")])
            # All-or-nothing: no partial adoption from healthy shards.
            assert fingerprint(eve) == before
        finally:
            eve.close()

    def test_hard_death_names_inflight_views(self, monkeypatch):
        eve = build_system(SystemConfig.sharded(2))
        events = []
        eve.subscribe(WorkerRecycled, events.append)
        try:
            monkeypatch.setenv(FAULT_ENV, "kill!V0")
            with pytest.raises(SynchronizationError, match="V0"):
                eve.apply_changes(
                    [RenameAttribute("IS0", "R0", "A", "A2")]
                )
            assert any(event.reason == "crash" for event in events)
        finally:
            eve.close()


# ----------------------------------------------------------------------
# processes -> serial fallback is loud, once
# ----------------------------------------------------------------------
class TestForkFallback:
    def test_fallback_warns_once_and_is_recorded(self, monkeypatch):
        from repro.sync import scheduler as scheduler_module

        monkeypatch.setattr(
            scheduler_module, "_fork_available", lambda: False
        )
        monkeypatch.setattr(scheduler_module, "_FALLBACK_WARNED", False)
        eve = build_system(
            SystemConfig().with_schedule(executor="processes")
        )
        with pytest.warns(RuntimeWarning, match="fork"):
            eve.apply_changes([RenameAttribute("IS0", "R0", "A", "A2")])
        (report,) = eve.last_schedule
        assert report.executor == "serial"
        assert report.executor_fallback == "processes"

        # Once per process, not once per batch.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            eve.apply_changes([RenameAttribute("IS0", "R0", "A2", "A3")])
        assert eve.last_schedule[0].executor_fallback == "processes"

    def test_no_fallback_marker_on_native_executors(self):
        eve = build_system()
        eve.apply_changes([RenameAttribute("IS0", "R0", "A", "A2")])
        (report,) = eve.last_schedule
        assert report.executor_fallback is None
        assert report.shards == ()


# ----------------------------------------------------------------------
# Dedupe wire rows (shared by the fork and workers executors)
# ----------------------------------------------------------------------
class _StubItem:
    def __init__(self, order, key, name):
        self.order = order
        self.coalesce_key = key
        self.view_name = name


class _StubOutcome:
    def __init__(self, item, results, coalesced):
        self.item = item
        self.results = results
        self.seconds = 0.25
        self.degraded = False
        self.coalesced = coalesced


class TestDedupeRows:
    def test_followers_ship_a_reference_not_a_payload(self):
        leader = _StubItem(0, ("k",), "V0")
        follower = _StubItem(1, ("k",), "V1")
        other = _StubItem(2, ("j",), "V2")
        rows = _dedupe_rows(
            [
                _StubOutcome(leader, ("payload",), coalesced=False),
                _StubOutcome(follower, ("payload",), coalesced=True),
                _StubOutcome(other, ("other",), coalesced=False),
            ]
        )
        kinds = [row[0] for row in rows]
        assert kinds == ["full", "coalesced", "full"]
        assert rows[1][2] == 0  # follower references the leader's order

    def test_full_rows_round_trip_uncommitted(self):
        item = _StubItem(3, ("k",), "V3")
        rows = _dedupe_rows(
            [_StubOutcome(item, ("payload",), coalesced=False)]
        )
        outcomes = []
        _outcomes_from_rows(rows, {3: item}, outcomes)
        (outcome,) = outcomes
        assert outcome.item is item
        assert outcome.results == ("payload",)
        assert outcome.committed is False


# ----------------------------------------------------------------------
# Config surface
# ----------------------------------------------------------------------
class TestConfigSurface:
    def test_sharded_preset_round_trips(self):
        config = SystemConfig.sharded(4, max_workers=4)
        assert config.schedule.executor == "workers"
        assert config.schedule.shards == 4
        assert SystemConfig.from_dict(config.to_dict()) == config

    def test_single_group_batches_still_use_the_pool(self):
        # The serial demotion for tiny batches must not bypass the
        # pool: mirrors have to see every batch or they drift.
        eve = build_system(
            SystemConfig(
                schedule=ScheduleConfig(executor="workers", shards=2)
            )
        )
        try:
            eve.apply_changes([RenameAttribute("IS0", "R2", "A", "A9")])
            (report,) = eve.last_schedule
            assert report.executor == "workers"
        finally:
            eve.close()
