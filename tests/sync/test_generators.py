"""Unit tests for the pluggable candidate-generator strategies."""

from itertools import islice

import pytest

from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import (
    AddAttribute,
    DeleteAttribute,
    DeleteRelation,
    RenameAttribute,
    RenameRelation,
)
from repro.space.space import InformationSpace
from repro.sync.generators import (
    AttributeReplacementGenerator,
    CandidateGenerator,
    DropGenerator,
    GenerationContext,
    RelationReplacementGenerator,
    RenameGenerator,
    default_generators,
)
from repro.sync.rewriting import ExtentRelationship, RenameMove, Rewriting
from repro.sync.synchronizer import ViewSynchronizer, _deduplicate
from repro.esql.parser import parse_view


@pytest.fixture
def space():
    space = InformationSpace()
    for source, name in [("IS1", "R"), ("IS2", "S"), ("IS3", "T")]:
        space.add_source(source)
        space.register_relation(
            source,
            Relation(Schema(name, ["A", "B"])),
            RelationStatistics(cardinality=100),
        )
    space.mkb.add_equivalence("R", "S", ["A", "B"])
    space.mkb.add_containment("R", "T", ["A", "B"])
    return space


@pytest.fixture
def context(space):
    return GenerationContext(space.mkb)


def _view(text):
    return parse_view(text)


REPLACEABLE_VIEW = (
    "CREATE VIEW V (VE = '~') AS "
    "SELECT R.A (AD = true, AR = true), R.B (AD = true, AR = true) "
    "FROM R (RD = true, RR = true)"
)


class TestChainShape:
    def test_default_chain_order(self):
        names = [generator.name for generator in default_generators()]
        assert names == [
            "rename",
            "drop",
            "replace-attribute",
            "replace-relation",
        ]

    def test_applies_to_gating(self):
        rename, drop, attr, relation = default_generators()
        delete_rel = DeleteRelation("IS1", "R")
        delete_attr = DeleteAttribute("IS1", "R", "A")
        rename_rel = RenameRelation("IS1", "R", "R2")
        add = AddAttribute(
            "IS1", "R", new_attribute=Schema("R", ["Z"]).attribute("Z")
        )
        assert rename.applies_to(rename_rel)
        assert not rename.applies_to(delete_rel)
        assert drop.applies_to(delete_rel) and drop.applies_to(delete_attr)
        assert attr.applies_to(delete_attr) and not attr.applies_to(delete_rel)
        assert relation.applies_to(delete_rel)
        assert relation.applies_to(delete_attr)  # the Sec. 7.6 heuristic
        assert not any(g.applies_to(add) for g in default_generators())


class TestIndividualGenerators:
    def test_rename_yields_single_equal_rewriting(self, space, context):
        view = ViewSynchronizer(space.mkb).resolve(_view(REPLACEABLE_VIEW))
        change = RenameAttribute("IS1", "R", "A", "Alpha")
        out = list(RenameGenerator().generate(view, change, context))
        assert len(out) == 1
        assert out[0].extent_relationship is ExtentRelationship.EQUAL
        assert isinstance(out[0].moves[0], RenameMove)
        # The alias pins the interface: output names survive the rename.
        assert out[0].view.interface == view.interface

    def test_drop_refuses_indispensable(self, space, context):
        view = ViewSynchronizer(space.mkb).resolve(
            _view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        )
        out = list(
            DropGenerator().generate(
                view, DeleteRelation("IS1", "R"), context
            )
        )
        assert out == []

    def test_relation_replacement_routes(self, space, context):
        view = ViewSynchronizer(space.mkb).resolve(_view(REPLACEABLE_VIEW))
        out = list(
            RelationReplacementGenerator().generate(
                view, DeleteRelation("IS1", "R"), context
            )
        )
        donors = [r.view.relation_names for r in out]
        assert ("S",) in donors and ("T",) in donors

    def test_attribute_replacement_redirects(self, space, context):
        # The donor S is already joined into the view, so the lost R.A can
        # be redirected to S.A without adding a carrier relation.
        view = ViewSynchronizer(space.mkb).resolve(
            _view(
                "CREATE VIEW V2 (VE = '~') AS "
                "SELECT R.A (AR = true), S.B "
                "FROM R, S "
                "WHERE (R.A = S.A) (CD = true, CR = true)"
            )
        )
        out = list(
            AttributeReplacementGenerator().generate(
                view, DeleteAttribute("IS1", "R", "A"), context
            )
        )
        assert out
        for rewriting in out:
            assert all(
                item.ref.relation != "R" or item.ref.attribute != "A"
                for item in rewriting.view.select
            )


class TestStreamingContract:
    def test_stream_matches_eager_synchronize(self, space):
        synchronizer = ViewSynchronizer(space.mkb)
        view = _view(REPLACEABLE_VIEW)
        change = DeleteRelation("IS1", "R")
        resolved = synchronizer.resolve(view)
        streamed = [
            rewriting
            for rewriting in synchronizer.generate_candidates(
                resolved, change
            )
            if rewriting.extent_relationship.satisfies(
                resolved.extent_parameter
            )
        ]
        assert _deduplicate(streamed) == synchronizer.synchronize(
            view, change
        )

    def test_generation_is_lazy_past_the_first_candidate(self, space):
        class Boom(CandidateGenerator):
            name = "boom"

            def applies_to(self, change):
                return True

            def generate(self, view, change, context):
                raise AssertionError("late generator must not be consulted")
                yield  # pragma: no cover

        synchronizer = ViewSynchronizer(
            space.mkb, generators=(*default_generators(), Boom())
        )
        view = synchronizer.resolve(_view(REPLACEABLE_VIEW))
        change = DeleteRelation("IS1", "R")
        first = list(
            islice(synchronizer.generate_candidates(view, change), 1)
        )
        assert len(first) == 1  # drop move; Boom never ran
        with pytest.raises(AssertionError):
            list(synchronizer.generate_candidates(view, change))

    def test_custom_generator_extends_the_chain(self, space):
        class Identity(CandidateGenerator):
            name = "identity"

            def applies_to(self, change):
                return isinstance(change, DeleteRelation)

            def generate(self, view, change, context):
                yield Rewriting(view, view, (), ExtentRelationship.EQUAL)

        synchronizer = ViewSynchronizer(
            space.mkb, generators=(*default_generators(), Identity())
        )
        view = synchronizer.resolve(_view(REPLACEABLE_VIEW))
        out = list(
            synchronizer.generate_candidates(view, DeleteRelation("IS1", "R"))
        )
        assert out[-1].view == view  # the custom candidate arrived last
