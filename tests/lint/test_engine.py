"""Unit tests for the shared AST walk and the project graphs."""

import textwrap

from tools.repro_lint.facts import MODULE_SCOPE, parse_module
from tools.repro_lint.project import FunctionRef, Project


def write_module(tmp_path, name: str, source: str):
    path = tmp_path / f"{name}.py"
    path.write_text(textwrap.dedent(source))
    return path


def test_call_sites_record_descriptors_and_keywords(tmp_path):
    path = write_module(
        tmp_path,
        "mod",
        """
        import multiprocessing

        def start(worker):
            context = multiprocessing.get_context("spawn")
            return context.Process(target=worker, daemon=True)
        """,
    )
    facts = parse_module(path)
    calls = facts.functions["start"].calls
    callees = {call.callee for call in calls}
    assert "multiprocessing.get_context" in callees
    assert "context.Process" in callees
    process = next(c for c in calls if c.callee == "context.Process")
    assert ("target", "worker") in process.keywords


def test_import_resolution_rewrites_through_the_table(tmp_path):
    path = write_module(
        tmp_path,
        "mod",
        """
        from time import perf_counter
        import datetime as dt

        def measure():
            return perf_counter(), dt.datetime.now()
        """,
    )
    facts = parse_module(path)
    assert facts.resolve("perf_counter") == "time.perf_counter"
    assert facts.resolve("dt.datetime.now") == "datetime.datetime.now"
    # Unknown heads pass through untouched.
    assert facts.resolve("obj.method") == "obj.method"


def test_except_facts_capture_comment_and_reraise(tmp_path):
    path = write_module(
        tmp_path,
        "mod",
        """
        def f(action):
            try:
                action()
            except Exception:  # reason stated here
                pass
            try:
                action()
            except Exception:
                raise
            try:
                action()
            except (KeyError, ValueError):
                pass
        """,
    )
    facts = parse_module(path)
    commented, reraising, narrowed = facts.excepts
    assert commented.has_comment and not commented.reraises
    assert reraising.reraises and not reraising.has_comment
    assert narrowed.types == ("KeyError", "ValueError")


def test_hash_in_string_is_not_a_comment(tmp_path):
    path = write_module(
        tmp_path,
        "mod",
        """
        def f(mapping):
            try:
                return mapping["#"]
            except Exception:
                return None
        """,
    )
    facts = parse_module(path)
    assert facts.excepts[0].has_comment is False


def test_call_graph_resolves_self_methods_and_imports(tmp_path):
    write_module(
        tmp_path,
        "helper",
        """
        def leaf():
            return 1
        """,
    )
    write_module(
        tmp_path,
        "mod",
        """
        from helper import leaf

        class Thing:
            def outer(self):
                return self.inner()

            def inner(self):
                return leaf()
        """,
    )
    project = Project.load([tmp_path])
    edges = project.call_edges()
    outer = FunctionRef("mod", "Thing.outer")
    inner = FunctionRef("mod", "Thing.inner")
    assert inner in edges[outer]
    assert FunctionRef("helper", "leaf") in edges[inner]

    parents = project.reachable([outer])
    chain = project.chain(parents, FunctionRef("helper", "leaf"))
    assert [str(ref) for ref in chain] == [
        "mod:Thing.outer",
        "mod:Thing.inner",
        "helper:leaf",
    ]


def test_import_closure_is_transitive(tmp_path):
    write_module(tmp_path, "a", "import b\n")
    write_module(tmp_path, "b", "import c\n")
    write_module(tmp_path, "c", "X = 1\n")
    write_module(tmp_path, "d", "X = 2\n")
    project = Project.load([tmp_path])
    assert project.import_closure("a") == {"a", "b", "c"}


def test_module_scope_statements_are_collected(tmp_path):
    path = write_module(
        tmp_path,
        "mod",
        """
        import zlib

        DIGEST = zlib.crc32(b"seed")
        """,
    )
    facts = parse_module(path)
    module_calls = facts.functions[MODULE_SCOPE].calls
    assert any(call.callee == "zlib.crc32" for call in module_calls)
