"""The gate that can never rot silently: repro-lint is clean on HEAD.

CI runs ``python -m tools.repro_lint`` (src + tools) and fails on any
violation; this test asserts the same thing from inside the tier-1
suite, so a change that seeds a violation fails locally *before* CI,
and a change that breaks the analyzer itself (parse error, bad rule)
fails just as loudly.
"""

import subprocess
import sys
from pathlib import Path

from tools.repro_lint import default_rules, run
from tools.repro_lint.cli import DEFAULT_PATHS

REPO = Path(__file__).resolve().parent.parent.parent


def test_src_tree_is_clean_via_api():
    violations = run([REPO / path for path in DEFAULT_PATHS])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_src_tree_is_clean_via_module_invocation():
    """Exactly the CI command, exit code and all."""
    completed = subprocess.run(
        [sys.executable, "-m", "tools.repro_lint"],
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "clean" in completed.stdout


def test_every_registered_rule_participates_in_the_gate():
    codes = [rule.code for rule in default_rules()]
    assert codes == sorted(codes)
    assert codes == ["RL001", "RL002", "RL003", "RL004", "RL005"]
