"""Fixture-based self-tests: every rule fires on its seeded violation
and stays silent on the clean twin.

The fixtures under ``tests/lint/fixtures/`` are parsed, never
imported; rules whose repo defaults point at ``repro.*`` modules are
re-instantiated here with fixture-local configuration — the same
plugin surface a future rule would use.
"""

from pathlib import Path

import pytest

from tools.repro_lint import Project, run
from tools.repro_lint.rules import (
    RULES,
    rl001_salted_hash,
    rl002_nondeterminism,
    rl003_silent_children,
    rl004_extent_staging,
    rl005_broad_except,
)

FIXTURES = Path(__file__).parent / "fixtures"


def fixture(name: str) -> Path:
    path = FIXTURES / name
    assert path.exists(), f"missing fixture {name}"
    return path


def check(rule, *names: str):
    project = Project.load([fixture(name) for name in names])
    return list(rule.check(project))


# ----------------------------------------------------------------------
# RL001
# ----------------------------------------------------------------------
def test_rl001_flags_builtin_hash_in_root_and_import_closure():
    rule = rl001_salted_hash.SaltedHashRule(roots=("rl001_bad",))
    violations = check(rule, "rl001_bad.py", "rl001_bad_helper.py")
    assert len(violations) == 2
    assert {Path(v.path).name for v in violations} == {
        "rl001_bad.py",
        "rl001_bad_helper.py",
    }
    assert all(v.rule == "RL001" for v in violations)
    assert all("crc32" in v.message for v in violations)


def test_rl001_clean_fixture_passes():
    rule = rl001_salted_hash.SaltedHashRule(roots=("rl001_clean",))
    assert check(rule, "rl001_clean.py") == []


def test_rl001_dunder_hash_is_exempt():
    # The clean fixture's __hash__ calls builtin hash(); covered above,
    # asserted separately so the exemption can never regress silently.
    rule = rl001_salted_hash.SaltedHashRule(roots=("rl001_clean",))
    violations = check(rule, "rl001_clean.py")
    assert violations == []


# ----------------------------------------------------------------------
# RL002
# ----------------------------------------------------------------------
def test_rl002_flags_clock_rng_and_set_iteration():
    rule = rl002_nondeterminism.NondeterminismRule(
        entry_modules=("rl002_bad",)
    )
    violations = check(rule, "rl002_bad.py")
    descriptions = "\n".join(v.message for v in violations)
    assert len(violations) == 3
    assert "time.time" in descriptions
    assert "random.randrange" in descriptions
    assert "set construction" in descriptions
    # The clock hides behind a private helper: the chain must name it.
    clock = next(v for v in violations if "time.time" in v.message)
    assert "modeled_cost" in clock.message and "_jitter" in clock.message


def test_rl002_clean_fixture_passes():
    rule = rl002_nondeterminism.NondeterminismRule(
        entry_modules=("rl002_clean",)
    )
    assert check(rule, "rl002_clean.py") == []


# ----------------------------------------------------------------------
# RL003
# ----------------------------------------------------------------------
def test_rl003_flags_emission_reachable_from_process_target():
    rule = rl003_silent_children.SilentChildrenRule()
    violations = check(rule, "rl003_bad.py")
    assert len(violations) == 1
    assert "BUS.emit" in violations[0].message
    # The path from the Process target through the helper is spelled out.
    assert "_child_main" in violations[0].message
    assert "_replay" in violations[0].message


def test_rl003_clean_fixture_passes():
    rule = rl003_silent_children.SilentChildrenRule()
    assert check(rule, "rl003_clean.py") == []


# ----------------------------------------------------------------------
# RL004
# ----------------------------------------------------------------------
def test_rl004_flags_every_bypass_shape():
    rule = rl004_extent_staging.ExtentStagingRule(exempt_modules=())
    violations = check(rule, "rl004_bad.py")
    assert len(violations) == 3
    messages = "\n".join(v.message for v in violations)
    assert "insert" in messages  # direct subscript mutate
    assert "delete_where" in messages  # .get() then mutate
    assert "clear" in messages  # taint through a binding
    assert all("mutable" in v.message for v in violations)


def test_rl004_clean_fixture_passes():
    rule = rl004_extent_staging.ExtentStagingRule(exempt_modules=())
    assert check(rule, "rl004_clean.py") == []


def test_rl004_exempt_module_is_skipped():
    rule = rl004_extent_staging.ExtentStagingRule(
        exempt_modules=("rl004_bad",)
    )
    assert check(rule, "rl004_bad.py") == []


# ----------------------------------------------------------------------
# RL005
# ----------------------------------------------------------------------
def test_rl005_flags_unjustified_broad_handlers():
    rule = rl005_broad_except.BroadExceptRule()
    violations = check(rule, "rl005_bad.py")
    assert len(violations) == 2
    assert any("Exception" in v.message for v in violations)
    assert any("bare except" in v.message for v in violations)


def test_rl005_clean_fixture_passes():
    rule = rl005_broad_except.BroadExceptRule()
    assert check(rule, "rl005_clean.py") == []


# ----------------------------------------------------------------------
# Cross-cutting
# ----------------------------------------------------------------------
@pytest.mark.parametrize("code", sorted(RULES))
def test_every_rule_has_explain_text(code):
    rule_class = RULES[code]
    assert rule_class.summary, f"{code} missing summary"
    assert len(rule_class.explain) > 200, f"{code} --explain text too thin"


def test_run_api_sorts_and_aggregates():
    violations = run(
        [fixture("rl005_bad.py"), fixture("rl005_clean.py")],
        [rl005_broad_except.BroadExceptRule()],
    )
    assert [v.lineno for v in violations] == sorted(
        v.lineno for v in violations
    )
    assert all(Path(v.path).name == "rl005_bad.py" for v in violations)
