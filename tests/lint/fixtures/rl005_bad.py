"""RL005 violating fixture: broad catches with no stated reason."""


def swallow(mapping: dict, key: str) -> object:
    try:
        return mapping[key]
    except Exception:
        return None


def swallow_everything(action) -> bool:
    try:
        action()
        return True
    except:
        return False
