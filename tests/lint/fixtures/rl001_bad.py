"""RL001 violating fixture: salted builtin hash() in routing code."""

# Parsed, never imported: repro-lint resolves this against the other
# fixture files loaded into the same analysis project.
import rl001_bad_helper


def route(relation: str, shards: int) -> int:
    # Violation: per-process salted hash in a cross-process decision.
    return hash(relation) % shards


def route_via_helper(relation: str, shards: int) -> int:
    return rl001_bad_helper.digest(relation) % shards
