"""RL001 clean fixture: crc32 routing; hash() only inside __hash__."""

import zlib


def route(relation: str, shards: int) -> int:
    return zlib.crc32(relation.encode("utf-8")) % shards


class RoutingKey:
    def __init__(self, relation: str) -> None:
        self.relation = relation

    def __hash__(self) -> int:
        # Exempt: process-local identity hashing, never crosses a
        # process boundary.
        return hash(self.relation)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RoutingKey) and other.relation == self.relation
        )
