"""RL005 clean fixture: narrowed, justified, and re-raising handlers."""


def narrowed(mapping: dict, key: str) -> object:
    try:
        return mapping[key]
    except KeyError:
        return None


def justified(problems: list, checks: list) -> list:
    for check in checks:
        try:
            check()
        except Exception as exc:  # noqa: BLE001 - collecting, not handling
            problems.append(str(exc))
    return problems


def cleanup_and_reraise(action, teardown) -> object:
    try:
        return action()
    except BaseException:
        teardown()
        raise
