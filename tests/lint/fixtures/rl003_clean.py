"""RL003 clean fixture: the child replies, the parent emits."""

import multiprocessing


class _Bus:
    def emit(self, event: object) -> None:
        pass


BUS = _Bus()


def _child_main(inbox, outbox) -> None:
    payload = inbox.get()
    # Clean: data flows back in the reply; no bus in the child.
    outbox.put(("replayed", payload))


def run(payload: object) -> None:
    context = multiprocessing.get_context("spawn")
    inbox, outbox = context.Queue(), context.Queue()
    process = context.Process(target=_child_main, args=(inbox, outbox))
    process.start()
    inbox.put(payload)
    # Clean: the parent process owns every emission.
    BUS.emit(("child-replied", outbox.get()))
    process.join()
