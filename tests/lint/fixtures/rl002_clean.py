"""RL002 clean fixture: deterministic modeled costs."""


def modeled_cost(cardinality: int, weight: float) -> float:
    return float(cardinality) * weight


def modeled_transfer(relations: list[str]) -> int:
    total = 0
    # Sorted: order is explicit, not interpreter-defined.
    for name in sorted(set(relations)):
        total += len(name)
    return total


def measured_seconds(clock) -> float:
    """An *injected* clock is a parameter, not a hidden source."""
    return float(clock())
