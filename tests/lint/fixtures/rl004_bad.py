"""RL004 violating fixture: in-place mutation bypassing staging."""


class System:
    def __init__(self, store) -> None:
        self._extents = store

    def patch_view(self, view_name: str, row: tuple) -> None:
        # Violation: direct read-then-mutate in one expression.
        self._extents[view_name].insert(row)

    def drop_rows(self, view_name: str, predicate) -> int:
        extent = self._extents.get(view_name)
        if extent is None:
            return 0
        # Violation: `extent` was read, not staged via .mutable().
        return extent.delete_where(predicate)


def reset(system: System, view_name: str) -> None:
    stale = system._extents[view_name]
    # Violation: taint survives the binding.
    stale.clear()
