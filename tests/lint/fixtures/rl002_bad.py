"""RL002 violating fixture: nondeterminism on a modeled-cost path."""

import random
import time


def modeled_cost(cardinality: int) -> float:
    """Public entry point; reaches the clock through a private helper."""
    return float(cardinality) * _jitter()


def _jitter() -> float:
    # Violation: wall clock reachable from modeled_cost.
    return time.time() % 1.0


def modeled_transfer(relations: list[str]) -> int:
    total = 0
    # Violation: set-construction iteration order is interpreter-defined.
    for name in set(relations):
        total += len(name)
    # Violation: RNG on a modeled path.
    return total + random.randrange(4)
