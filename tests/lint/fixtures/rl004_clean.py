"""RL004 clean fixture: every write goes through the staging door."""


class System:
    def __init__(self, store) -> None:
        self._extents = store

    def patch_view(self, view_name: str, row: tuple) -> None:
        extent = self._extents.mutable(view_name)
        if extent is not None:
            # Clean: .mutable() returned the staged copy.
            extent.insert(row)

    def replace_view(self, view_name: str, relation) -> None:
        # Clean: store-level assignment is staged inside the store.
        self._extents[view_name] = relation

    def forget_view(self, view_name: str) -> None:
        # Clean: store-level operation, staged inside the store.
        self._extents.pop(view_name, None)

    def cardinality(self, view_name: str) -> int:
        extent = self._extents.get(view_name)
        # Clean: reading a read-only snapshot is the whole point.
        return 0 if extent is None else extent.cardinality
