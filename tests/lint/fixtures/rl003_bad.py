"""RL003 violating fixture: a worker child that emits bus events."""

import multiprocessing


class _Bus:
    def emit(self, event: object) -> None:
        raise AssertionError(f"children must not emit ({event!r})")


BUS = _Bus()


def _child_main(inbox, outbox) -> None:
    payload = inbox.get()
    result = _replay(payload)
    outbox.put(result)


def _replay(payload: object) -> object:
    # Violation: emission reachable from the Process target.
    BUS.emit(("replayed", payload))
    return payload


def start() -> multiprocessing.Process:
    context = multiprocessing.get_context("spawn")
    inbox, outbox = context.Queue(), context.Queue()
    process = context.Process(target=_child_main, args=(inbox, outbox))
    process.start()
    return process
