"""Imported by rl001_bad: the closure must cover this module too."""


def digest(relation: str) -> int:
    # Violation: reached through the root's import closure.
    return hash(relation)
