"""CLI contract: exit codes, --explain, --select, JSON output."""

import json
from pathlib import Path

import pytest

from tools.repro_lint.cli import main
from tools.repro_lint.rules import RULES

FIXTURES = Path(__file__).parent / "fixtures"


def test_violations_exit_nonzero_per_rule(capsys):
    """Each seeded fixture violation drives a non-zero exit."""
    cases = {
        "RL001": "rl001_bad.py",
        "RL002": "rl002_bad.py",
        "RL003": "rl003_bad.py",
        "RL004": "rl004_bad.py",
        "RL005": "rl005_bad.py",
    }
    assert sorted(cases) == sorted(RULES), "cover every registered rule"
    for code, name in cases.items():
        argv = [str(FIXTURES / name)]
        if code in ("RL001", "RL002"):
            # Repo defaults point these rules at repro.*; target the
            # fixture module explicitly, exactly as the tests do.
            argv = ["--select", code, str(FIXTURES / name)]
            rule = RULES[code]()
            rule_attr = "roots" if code == "RL001" else "entry_modules"
            assert getattr(rule, rule_attr)  # defaults exist
            # CLI runs defaults, so RL001/RL002 need their module-scoped
            # twins exercised through the API tests; here assert the
            # *clean* CLI behavior instead: no crash, deterministic exit.
            exit_code = main(argv)
            out = capsys.readouterr().out
            assert exit_code in (0, 1)
            assert "Traceback" not in out
            continue
        exit_code = main(["--select", code, str(FIXTURES / name)])
        out = capsys.readouterr().out
        assert exit_code == 1, f"{code} fixture must fail the gate"
        assert code in out


def test_clean_paths_exit_zero(capsys):
    exit_code = main([str(FIXTURES / "rl005_clean.py")])
    assert exit_code == 0
    assert "clean" in capsys.readouterr().out


def test_explain_prints_rationale_for_every_rule(capsys):
    for code in RULES:
        assert main(["--explain", code]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"{code}:")
        assert len(out) > 300


def test_explain_unknown_rule_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["--explain", "RL999"])
    assert excinfo.value.code == 2


def test_select_unknown_rule_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["--select", "nope", "src"])
    assert excinfo.value.code == 2


def test_json_format_is_machine_readable(capsys):
    exit_code = main(
        ["--select", "RL005", "--format", "json",
         str(FIXTURES / "rl005_bad.py")]
    )
    assert exit_code == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 2
    assert {entry["rule"] for entry in payload} == {"RL005"}
    assert all(
        set(entry) == {"rule", "path", "lineno", "message"}
        for entry in payload
    )


def test_list_rules_covers_registry(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out
