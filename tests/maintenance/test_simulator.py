"""Unit tests for the Algorithm 1 maintenance simulator."""

import pytest

from repro.config import MaintenanceConfig
from repro.errors import ConfigurationError, MaintenanceError
from repro.esql.evaluator import evaluate_view
from repro.esql.parser import parse_view
from repro.maintenance.counters import MaintenanceCounters
from repro.maintenance.simulator import ViewMaintainer
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.space import InformationSpace
from repro.space.updates import DataUpdate, UpdateKind


@pytest.fixture
def space():
    sp = InformationSpace()
    sp.add_source("IS1")
    sp.add_source("IS2")
    sp.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B"]), [(1, 10), (2, 20)]),
        RelationStatistics(cardinality=2, tuple_size=8),
    )
    sp.register_relation(
        "IS2",
        Relation(Schema("S", ["A", "C"]), [(1, 100), (2, 200), (2, 201)]),
        RelationStatistics(cardinality=3, tuple_size=8),
    )
    return sp


@pytest.fixture
def view():
    return parse_view(
        "CREATE VIEW V AS SELECT R.A, R.B, S.C FROM R, S WHERE R.A = S.A"
    )


def materialize(view, space):
    return evaluate_view(view, space.relations())


class TestInsertPropagation:
    def test_insert_extends_extent_correctly(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        update = space.source("IS1").insert("R", (2, 21))
        maintainer.maintain(view, extent, update)
        recomputed = materialize(view, space)
        assert sorted(extent.rows) == sorted(recomputed.rows)

    def test_insert_with_no_matches_changes_nothing(self, space, view):
        extent = materialize(view, space)
        before = sorted(extent.rows)
        maintainer = ViewMaintainer(space)
        update = space.source("IS1").insert("R", (99, 0))
        maintainer.maintain(view, extent, update)
        assert sorted(extent.rows) == before

    def test_update_at_second_source(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        update = space.source("IS2").insert("S", (1, 101))
        maintainer.maintain(view, extent, update)
        assert sorted(extent.rows) == sorted(materialize(view, space).rows)

    def test_selection_prunes_seed(self, space):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R WHERE R.B > 50"
        )
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        update = space.source("IS1").insert("R", (5, 10))  # fails R.B > 50
        maintainer.maintain(view, extent, update)
        assert extent.cardinality == 0


class TestDeletePropagation:
    def test_delete_removes_joined_rows(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        update = space.source("IS1").delete("R", (2, 20))
        maintainer.maintain(view, extent, update)
        assert sorted(extent.rows) == sorted(materialize(view, space).rows)

    def test_inconsistent_extent_detected(self, space, view):
        maintainer = ViewMaintainer(space)
        empty = materialize(view, space).empty_like()
        update = space.source("IS1").delete("R", (1, 10))
        with pytest.raises(MaintenanceError):
            maintainer.maintain(view, empty, update)


class TestSequences:
    def test_long_update_stream_stays_consistent(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        operations = [
            ("insert", "R", (3, 30)),
            ("insert", "S", (3, 300)),
            ("insert", "S", (3, 301)),
            ("delete", "R", (1, 10)),
            ("insert", "R", (1, 11)),
            ("delete", "S", (2, 200)),
        ]
        for kind, relation, row in operations:
            source = space.owner_of(relation)
            if kind == "insert":
                update = source.insert(relation, row)
            else:
                update = source.delete(relation, row)
            maintainer.maintain(view, extent, update)
            assert sorted(extent.rows) == sorted(
                materialize(view, space).rows
            ), f"diverged after {kind} {row} at {relation}"


class TestCounters:
    def test_counts_returned_per_update(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        update = space.source("IS1").insert("R", (1, 12))
        counters = maintainer.maintain(view, extent, update)
        # notification + (delta to IS2, result back) = 3 messages
        assert counters.messages == 3
        assert counters.bytes_transferred > 0

    def test_counters_accumulate(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        for row in [(1, 12), (1, 13)]:
            update = space.source("IS1").insert("R", row)
            maintainer.maintain(view, extent, update)
        assert maintainer.counters.messages == 6

    def test_single_relation_view_sends_only_notification(self, space):
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        update = space.source("IS1").insert("R", (7, 70))
        counters = maintainer.maintain(view, extent, update)
        assert counters.messages == 1  # footnote 12: no query needed

    def test_unrelated_update_rejected(self, space, view):
        maintainer = ViewMaintainer(space)
        extent = materialize(view, space)
        ghost = DataUpdate("IS9", "Zzz", UpdateKind.INSERT, (1,))
        with pytest.raises(MaintenanceError):
            maintainer.maintain(view, extent, ghost)


class TestCountersUnit:
    def test_merge_and_reset(self):
        a = MaintenanceCounters(1, 10, 100)
        b = MaintenanceCounters(2, 20, 200)
        merged = a.merged(b)
        assert (merged.messages, merged.bytes_transferred,
                merged.io_operations) == (3, 30, 300)
        a.reset()
        assert a.messages == 0

    def test_record_message_counts_bytes(self):
        counters = MaintenanceCounters()
        counters.record_message(64)
        counters.record_message(0)
        assert counters.messages == 2
        assert counters.bytes_transferred == 64

    def test_snapshot_is_an_independent_copy(self):
        counters = MaintenanceCounters(1, 10, 100)
        frozen = counters.snapshot()
        counters.record_message(5)
        counters.record_io(7)
        assert (frozen.messages, frozen.bytes_transferred,
                frozen.io_operations) == (1, 10, 100)

    def test_diff_recovers_the_delta_since_a_snapshot(self):
        counters = MaintenanceCounters(1, 10, 100)
        frozen = counters.snapshot()
        counters.record_message(32)
        counters.record_io(3)
        delta = counters.diff(frozen)
        assert (delta.messages, delta.bytes_transferred,
                delta.io_operations) == (1, 32, 3)


class TestRepresentations:
    def test_unknown_representation_rejected(self, space):
        with pytest.raises(ConfigurationError, match="representation"):
            ViewMaintainer(space, config=MaintenanceConfig(representation="quantum"))

    @pytest.mark.parametrize("representation", ["dict", "tuple"])
    def test_both_representations_maintain_correctly(
        self, space, view, representation
    ):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(
            space, config=MaintenanceConfig(representation=representation)
        )
        update = space.source("IS1").insert("R", (2, 21))
        maintainer.maintain(view, extent, update)
        assert sorted(extent.rows) == sorted(materialize(view, space).rows)
        assert maintainer.representation == representation


class TestMaintainBatch:
    def test_empty_batch_is_a_noop(self, space, view):
        maintainer = ViewMaintainer(space)
        extent = materialize(view, space)
        before = sorted(extent.rows)
        counters = maintainer.maintain_batch(view, extent, [])
        assert counters.messages == 0
        assert counters.bytes_transferred == 0
        assert counters.io_operations == 0
        assert sorted(extent.rows) == before

    def test_mixed_insert_delete_stream(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        source = space.source("IS1")
        updates = [
            source.insert("R", (1, 11)),
            source.insert("R", (2, 22)),
            source.delete("R", (1, 11)),
        ]
        counters = maintainer.maintain_batch(view, extent, updates)
        assert sorted(extent.rows) == sorted(materialize(view, space).rows)
        # One notification plus one query/response round trip per update.
        assert counters.messages == 9

    def test_unrelated_update_rejected(self, space, view):
        maintainer = ViewMaintainer(space)
        extent = materialize(view, space)
        ghost = DataUpdate("IS9", "Zzz", UpdateKind.INSERT, (1,))
        with pytest.raises(MaintenanceError):
            maintainer.maintain_batch(view, extent, [ghost])

    def test_batch_counters_equal_per_update_counters(self, view):
        def build():
            sp = InformationSpace()
            sp.add_source("IS1")
            sp.add_source("IS2")
            sp.register_relation(
                "IS1",
                Relation(Schema("R", ["A", "B"]), [(1, 10), (2, 20)]),
                RelationStatistics(cardinality=2, tuple_size=8),
            )
            sp.register_relation(
                "IS2",
                Relation(
                    Schema("S", ["A", "C"]), [(1, 100), (2, 200), (2, 201)]
                ),
                RelationStatistics(cardinality=3, tuple_size=8),
            )
            return sp

        rows = [(k % 3, k) for k in range(10)]

        reference_space = build()
        reference_extent = materialize(view, reference_space)
        reference = ViewMaintainer(
            reference_space, config=MaintenanceConfig(representation="dict")
        )
        for row in rows:
            update = reference_space.source("IS1").insert("R", row)
            reference.maintain(view, reference_extent, update)

        batch_space = build()
        batch_extent = materialize(view, batch_space)
        maintainer = ViewMaintainer(batch_space)
        updates = [
            batch_space.source("IS1").insert("R", row) for row in rows
        ]
        maintainer.maintain_batch(view, batch_extent, updates)

        assert batch_extent.rows == reference_extent.rows
        for attribute in ("messages", "bytes_transferred", "io_operations"):
            assert getattr(maintainer.counters, attribute) == getattr(
                reference.counters, attribute
            )

    def test_inconsistent_extent_detected_in_batch(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        source = space.source("IS1")
        # Remove a joined row from the extent behind the maintainer's
        # back, then propagate its delete through the batch path.
        update = source.delete("R", (1, 10))
        extent.delete((1, 10, 100))
        with pytest.raises(MaintenanceError, match="inconsistent"):
            maintainer.maintain_batch(view, extent, [update])
