"""Unit tests for the Algorithm 1 maintenance simulator."""

import pytest

from repro.errors import MaintenanceError
from repro.esql.evaluator import evaluate_view
from repro.esql.parser import parse_view
from repro.maintenance.counters import MaintenanceCounters
from repro.maintenance.simulator import ViewMaintainer
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.space import InformationSpace
from repro.space.updates import DataUpdate, UpdateKind


@pytest.fixture
def space():
    sp = InformationSpace()
    sp.add_source("IS1")
    sp.add_source("IS2")
    sp.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B"]), [(1, 10), (2, 20)]),
        RelationStatistics(cardinality=2, tuple_size=8),
    )
    sp.register_relation(
        "IS2",
        Relation(Schema("S", ["A", "C"]), [(1, 100), (2, 200), (2, 201)]),
        RelationStatistics(cardinality=3, tuple_size=8),
    )
    return sp


@pytest.fixture
def view():
    return parse_view(
        "CREATE VIEW V AS SELECT R.A, R.B, S.C FROM R, S WHERE R.A = S.A"
    )


def materialize(view, space):
    return evaluate_view(view, space.relations())


class TestInsertPropagation:
    def test_insert_extends_extent_correctly(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        update = space.source("IS1").insert("R", (2, 21))
        maintainer.maintain(view, extent, update)
        recomputed = materialize(view, space)
        assert sorted(extent.rows) == sorted(recomputed.rows)

    def test_insert_with_no_matches_changes_nothing(self, space, view):
        extent = materialize(view, space)
        before = sorted(extent.rows)
        maintainer = ViewMaintainer(space)
        update = space.source("IS1").insert("R", (99, 0))
        maintainer.maintain(view, extent, update)
        assert sorted(extent.rows) == before

    def test_update_at_second_source(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        update = space.source("IS2").insert("S", (1, 101))
        maintainer.maintain(view, extent, update)
        assert sorted(extent.rows) == sorted(materialize(view, space).rows)

    def test_selection_prunes_seed(self, space):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R WHERE R.B > 50"
        )
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        update = space.source("IS1").insert("R", (5, 10))  # fails R.B > 50
        maintainer.maintain(view, extent, update)
        assert extent.cardinality == 0


class TestDeletePropagation:
    def test_delete_removes_joined_rows(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        update = space.source("IS1").delete("R", (2, 20))
        maintainer.maintain(view, extent, update)
        assert sorted(extent.rows) == sorted(materialize(view, space).rows)

    def test_inconsistent_extent_detected(self, space, view):
        maintainer = ViewMaintainer(space)
        empty = materialize(view, space).empty_like()
        update = space.source("IS1").delete("R", (1, 10))
        with pytest.raises(MaintenanceError):
            maintainer.maintain(view, empty, update)


class TestSequences:
    def test_long_update_stream_stays_consistent(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        operations = [
            ("insert", "R", (3, 30)),
            ("insert", "S", (3, 300)),
            ("insert", "S", (3, 301)),
            ("delete", "R", (1, 10)),
            ("insert", "R", (1, 11)),
            ("delete", "S", (2, 200)),
        ]
        for kind, relation, row in operations:
            source = space.owner_of(relation)
            if kind == "insert":
                update = source.insert(relation, row)
            else:
                update = source.delete(relation, row)
            maintainer.maintain(view, extent, update)
            assert sorted(extent.rows) == sorted(
                materialize(view, space).rows
            ), f"diverged after {kind} {row} at {relation}"


class TestCounters:
    def test_counts_returned_per_update(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        update = space.source("IS1").insert("R", (1, 12))
        counters = maintainer.maintain(view, extent, update)
        # notification + (delta to IS2, result back) = 3 messages
        assert counters.messages == 3
        assert counters.bytes_transferred > 0

    def test_counters_accumulate(self, space, view):
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        for row in [(1, 12), (1, 13)]:
            update = space.source("IS1").insert("R", row)
            maintainer.maintain(view, extent, update)
        assert maintainer.counters.messages == 6

    def test_single_relation_view_sends_only_notification(self, space):
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        extent = materialize(view, space)
        maintainer = ViewMaintainer(space)
        update = space.source("IS1").insert("R", (7, 70))
        counters = maintainer.maintain(view, extent, update)
        assert counters.messages == 1  # footnote 12: no query needed

    def test_unrelated_update_rejected(self, space, view):
        maintainer = ViewMaintainer(space)
        extent = materialize(view, space)
        ghost = DataUpdate("IS9", "Zzz", UpdateKind.INSERT, (1,))
        with pytest.raises(MaintenanceError):
            maintainer.maintain(view, extent, ghost)


class TestCountersUnit:
    def test_merge_and_reset(self):
        a = MaintenanceCounters(1, 10, 100)
        b = MaintenanceCounters(2, 20, 200)
        merged = a.merged(b)
        assert (merged.messages, merged.bytes_transferred,
                merged.io_operations) == (3, 30, 300)
        a.reset()
        assert a.messages == 0

    def test_record_message_counts_bytes(self):
        counters = MaintenanceCounters()
        counters.record_message(64)
        counters.record_message(0)
        assert counters.messages == 2
        assert counters.bytes_transferred == 64
