"""Unit tests for MISD constraints (Fig. 4)."""

import pytest

from repro.errors import ConstraintError
from repro.esql.parser import parse_condition_clause
from repro.misd.constraints import (
    JoinConstraint,
    PCConstraint,
    PCRelationship,
    RelationFragment,
    TypeIntegrityConstraint,
)
from repro.relational.expressions import Condition
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType


def cond(*texts):
    return Condition(parse_condition_clause(t) for t in texts)


class TestTypeIntegrity:
    def test_check_against_matching_schema(self):
        tc = TypeIntegrityConstraint("R", "A", AttributeType.INT)
        tc.check_against(Schema("R", [Attribute("A")]))

    def test_check_against_mismatch(self):
        tc = TypeIntegrityConstraint("R", "A", AttributeType.STRING)
        with pytest.raises(ConstraintError):
            tc.check_against(Schema("R", [Attribute("A")]))


class TestJoinConstraint:
    def test_requires_clauses(self):
        with pytest.raises(ConstraintError):
            JoinConstraint("R", "S", Condition.true())

    def test_foreign_relation_rejected(self):
        with pytest.raises(ConstraintError):
            JoinConstraint("R", "S", cond("R.A = T.B"))

    def test_other(self):
        jc = JoinConstraint("R", "S", cond("R.A = S.A"))
        assert jc.other("R") == "S"
        assert jc.other("S") == "R"
        with pytest.raises(ConstraintError):
            jc.other("T")

    def test_involves(self):
        jc = JoinConstraint("R", "S", cond("R.A = S.A"))
        assert jc.involves("R") and jc.involves("S")
        assert not jc.involves("T")


class TestRelationFragment:
    def test_requires_attributes(self):
        with pytest.raises(ConstraintError):
            RelationFragment("R", ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ConstraintError):
            RelationFragment("R", ("A", "A"))

    def test_selection_detection(self):
        assert not RelationFragment("R", ("A",)).has_selection
        assert RelationFragment("R", ("A",), cond("R.A > 5")).has_selection

    def test_check_against_schema(self):
        fragment = RelationFragment("R", ("A",), cond("R.B > 0"))
        fragment.check_against(Schema("R", ["A", "B"]))

    def test_check_against_missing_attribute(self):
        fragment = RelationFragment("R", ("Z",))
        with pytest.raises(Exception):
            fragment.check_against(Schema("R", ["A"]))

    def test_foreign_selection_rejected(self):
        fragment = RelationFragment("R", ("A",), cond("S.B > 0"))
        with pytest.raises(ConstraintError):
            fragment.check_against(Schema("R", ["A", "B"]))


class TestPCConstraint:
    def make(self, relationship=PCRelationship.SUBSET):
        return PCConstraint(
            RelationFragment("R", ("A", "B")),
            RelationFragment("T", ("X", "Y")),
            relationship,
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConstraintError):
            PCConstraint(
                RelationFragment("R", ("A",)),
                RelationFragment("T", ("X", "Y")),
                PCRelationship.SUBSET,
            )

    def test_self_relation_rejected(self):
        with pytest.raises(ConstraintError):
            PCConstraint(
                RelationFragment("R", ("A",)),
                RelationFragment("R", ("B",)),
                PCRelationship.SUBSET,
            )

    def test_attribute_map_positional(self):
        assert self.make().attribute_map() == {"A": "X", "B": "Y"}
        assert self.make().reverse_attribute_map() == {"X": "A", "Y": "B"}

    def test_oriented_identity(self):
        pc = self.make()
        assert pc.oriented("R") is pc

    def test_oriented_flip(self):
        pc = self.make(PCRelationship.SUBSET)
        flipped = pc.oriented("T")
        assert flipped.left.relation == "T"
        assert flipped.relationship is PCRelationship.SUPERSET
        assert flipped.attribute_map() == {"X": "A", "Y": "B"}

    def test_oriented_unrelated(self):
        with pytest.raises(ConstraintError):
            self.make().oriented("Z")

    def test_relationship_flips(self):
        assert PCRelationship.SUBSET.flipped() is PCRelationship.SUPERSET
        assert PCRelationship.SUPERSET.flipped() is PCRelationship.SUBSET
        assert (
            PCRelationship.EQUIVALENT.flipped() is PCRelationship.EQUIVALENT
        )

    def test_check_against_type_compatibility(self):
        pc = PCConstraint(
            RelationFragment("R", ("A",)),
            RelationFragment("T", ("X",)),
            PCRelationship.EQUIVALENT,
        )
        pc.check_against(Schema("R", ["A"]), Schema("T", ["X"]))
        with pytest.raises(ConstraintError):
            pc.check_against(
                Schema("R", ["A"]),
                Schema("T", [Attribute("X", AttributeType.STRING)]),
            )
