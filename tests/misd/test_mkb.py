"""Unit tests for the Meta Knowledge Base."""

import pytest

from repro.errors import ConstraintError, UnknownRelationError
from repro.esql.parser import parse_condition_clause
from repro.misd.constraints import JoinConstraint, PCRelationship
from repro.misd.mkb import MetaKnowledgeBase
from repro.misd.statistics import RelationStatistics
from repro.relational.expressions import Condition
from repro.relational.schema import Schema


def cond(*texts):
    return Condition(parse_condition_clause(t) for t in texts)


@pytest.fixture
def mkb():
    base = MetaKnowledgeBase()
    base.register_relation(Schema("R", ["A", "B"]), "IS1")
    base.register_relation(Schema("S", ["A", "C"]), "IS2")
    base.register_relation(Schema("T", ["A", "D"]), "IS3")
    return base


class TestRegistration:
    def test_register_and_lookup(self, mkb):
        assert "R" in mkb
        assert mkb.owner("R") == "IS1"
        assert mkb.schema("R").attribute_names == ("A", "B")

    def test_duplicate_registration_rejected(self, mkb):
        with pytest.raises(ConstraintError):
            mkb.register_relation(Schema("R", ["X"]), "IS9")

    def test_register_with_statistics(self):
        base = MetaKnowledgeBase()
        base.register_relation(
            Schema("R", ["A"]), "IS1", RelationStatistics(cardinality=99)
        )
        assert base.statistics.cardinality("R") == 99

    def test_relations_of_source(self, mkb):
        assert mkb.relations_of_source("IS1") == ("R",)

    def test_unknown_relation(self, mkb):
        with pytest.raises(UnknownRelationError):
            mkb.schema("Z")

    def test_type_constraints_derived_from_schema(self, mkb):
        tcs = mkb.type_constraints("R")
        assert [tc.attribute for tc in tcs] == ["A", "B"]


class TestJoinConstraints:
    def test_add_and_query(self, mkb):
        mkb.add_join_constraint(JoinConstraint("R", "S", cond("R.A = S.A")))
        assert len(mkb.join_constraints()) == 1
        assert len(mkb.join_constraints("R")) == 1
        assert mkb.join_constraints("T") == ()
        assert mkb.join_partners("R") == ("S",)

    def test_between(self, mkb):
        mkb.add_join_constraint(JoinConstraint("R", "S", cond("R.A = S.A")))
        assert mkb.join_constraint_between("S", "R") is not None
        assert mkb.join_constraint_between("R", "T") is None

    def test_unknown_attribute_rejected(self, mkb):
        with pytest.raises(Exception):
            mkb.add_join_constraint(
                JoinConstraint("R", "S", cond("R.Z = S.A"))
            )

    def test_unknown_relation_rejected(self, mkb):
        with pytest.raises(UnknownRelationError):
            mkb.add_join_constraint(JoinConstraint("R", "Z", cond("R.A = Z.A")))


class TestPCConstraints:
    def test_add_equivalence_helper(self, mkb):
        pc = mkb.add_equivalence("R", "S", ["A"])
        assert pc.relationship is PCRelationship.EQUIVALENT
        assert len(mkb.pc_constraints("R")) == 1

    def test_add_containment_defaults_to_common_attributes(self, mkb):
        pc = mkb.add_containment("R", "S")
        assert pc.left.attributes == ("A",)

    def test_no_common_attributes_rejected(self):
        base = MetaKnowledgeBase()
        base.register_relation(Schema("R", ["A"]), "IS1")
        base.register_relation(Schema("S", ["B"]), "IS2")
        with pytest.raises(ConstraintError):
            base.add_containment("R", "S")

    def test_pc_constraints_from_orients(self, mkb):
        mkb.add_containment("R", "S", ["A"])
        oriented = mkb.pc_constraints_from("S")
        assert oriented[0].left.relation == "S"
        assert oriented[0].relationship is PCRelationship.SUPERSET

    def test_substitute_candidates_filters_coverage(self, mkb):
        mkb.add_containment("R", "S", ["A"])
        assert len(mkb.substitute_candidates("R", ["A"])) == 1
        assert mkb.substitute_candidates("R", ["A", "B"]) == ()

    def test_pc_constraint_between(self, mkb):
        mkb.add_containment("R", "S", ["A"])
        oriented = mkb.pc_constraint_between("S", "R")
        assert oriented is not None
        assert oriented.left.relation == "S"
        assert mkb.pc_constraint_between("R", "T") is None


class TestConsistency:
    def test_clean_mkb_is_consistent(self, mkb):
        mkb.add_join_constraint(JoinConstraint("R", "S", cond("R.A = S.A")))
        mkb.add_containment("R", "S", ["A"])
        assert mkb.check_consistency() == []

    def test_dangling_constraints_reported(self, mkb):
        # Bypass the evolution hooks to forge an inconsistent state.
        mkb.add_join_constraint(JoinConstraint("R", "S", cond("R.A = S.A")))
        mkb.add_containment("R", "S", ["A"])
        del mkb._schemas["S"]
        problems = mkb.check_consistency()
        assert len(problems) == 2


class TestEvolution:
    def test_relation_delete_retires_constraints(self, mkb):
        mkb.add_join_constraint(JoinConstraint("R", "S", cond("R.A = S.A")))
        mkb.add_containment("R", "S", ["A"])
        mkb.on_relation_deleted("R")
        assert "R" not in mkb
        assert mkb.join_constraints() == ()
        assert mkb.pc_constraints() == ()
        # ... but the knowledge is retained for synchronization:
        assert len(mkb.sync_pc_constraints("R")) == 1
        assert len(mkb.sync_join_constraints("R")) == 1
        assert mkb.historical_schema("R").attribute_names == ("A", "B")

    def test_statistics_survive_deletion(self, mkb):
        mkb.statistics.register_simple("R", 1234)
        mkb.on_relation_deleted("R")
        assert mkb.statistics.cardinality("R") == 1234

    def test_replacement_candidates_require_live_donor(self, mkb):
        mkb.add_containment("R", "S", ["A"])
        mkb.add_containment("R", "T", ["A"])
        mkb.on_relation_deleted("R")
        mkb.on_relation_deleted("T")
        candidates = mkb.replacement_candidates("R", ["A"])
        assert [pc.right.relation for pc in candidates] == ["S"]

    def test_relation_rename_rewrites_constraints(self, mkb):
        mkb.add_join_constraint(JoinConstraint("R", "S", cond("R.A = S.A")))
        mkb.add_containment("R", "S", ["A"])
        mkb.statistics.register_simple("R", 55)
        mkb.on_relation_renamed("R", "R2")
        assert "R2" in mkb and "R" not in mkb
        jc = mkb.join_constraints("R2")[0]
        assert "R2.A" in str(jc.condition)
        pc = mkb.pc_constraints("R2")[0]
        assert pc.left.relation == "R2"
        assert mkb.statistics.cardinality("R2") == 55
        assert mkb.check_consistency() == []

    def test_rename_collision_rejected(self, mkb):
        with pytest.raises(ConstraintError):
            mkb.on_relation_renamed("R", "S")

    def test_attribute_delete_shrinks_schema_and_retires(self, mkb):
        mkb.add_join_constraint(JoinConstraint("R", "S", cond("R.A = S.A")))
        mkb.add_containment("R", "S", ["A"])
        mkb.on_attribute_deleted("R", "A")
        assert mkb.schema("R").attribute_names == ("B",)
        assert mkb.join_constraints() == ()
        assert mkb.pc_constraints() == ()
        assert len(mkb.sync_pc_constraints("R")) == 1
        # Historical schema still knows A.
        assert "A" in mkb.historical_schema("R")

    def test_attribute_delete_keeps_unrelated_constraints(self, mkb):
        mkb.add_containment("R", "S", ["A"])
        mkb.on_attribute_deleted("R", "B")
        assert len(mkb.pc_constraints()) == 1

    def test_attribute_rename_rewrites_constraints(self, mkb):
        mkb.add_join_constraint(JoinConstraint("R", "S", cond("R.A = S.A")))
        mkb.add_containment("R", "S", ["A"])
        mkb.on_attribute_renamed("R", "A", "A2")
        assert mkb.schema("R").attribute_names == ("A2", "B")
        assert "R.A2" in str(mkb.join_constraints("R")[0].condition)
        assert mkb.pc_constraints("R")[0].left.attributes == ("A2",)
        assert mkb.check_consistency() == []

    def test_historical_schema_unknown(self, mkb):
        with pytest.raises(UnknownRelationError):
            mkb.historical_schema("Zzz")
