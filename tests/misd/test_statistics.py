"""Unit tests for the statistics registry."""

import pytest

from repro.errors import EvaluationError
from repro.misd.statistics import (
    DEFAULT_CARDINALITY,
    DEFAULT_SELECTIVITY,
    DEFAULT_TUPLE_SIZE,
    RelationStatistics,
    SpaceStatistics,
)


class TestRelationStatistics:
    def test_defaults_match_table1(self):
        stats = RelationStatistics()
        assert stats.cardinality == 400
        assert stats.tuple_size == 100
        assert stats.selectivity == 0.5

    def test_validation(self):
        with pytest.raises(EvaluationError):
            RelationStatistics(cardinality=-1)
        with pytest.raises(EvaluationError):
            RelationStatistics(tuple_size=0)
        with pytest.raises(EvaluationError):
            RelationStatistics(selectivity=1.5)
        with pytest.raises(EvaluationError):
            RelationStatistics(attribute_sizes={"A": 0})

    def test_attribute_size_explicit(self):
        stats = RelationStatistics(attribute_sizes={"A": 30})
        assert stats.attribute_size("A") == 30

    def test_attribute_size_default_argument(self):
        stats = RelationStatistics()
        assert stats.attribute_size("A", default=12) == 12

    def test_attribute_size_even_share(self):
        stats = RelationStatistics(
            tuple_size=100, attribute_sizes={"A": 10, "B": 10}
        )
        assert stats.attribute_size("C") == 50  # 100 // 2 registered

    def test_scaled_to(self):
        scaled = RelationStatistics(selectivity=0.3).scaled_to(999)
        assert scaled.cardinality == 999
        assert scaled.selectivity == 0.3


class TestSpaceStatistics:
    def test_defaults_match_table1(self):
        space = SpaceStatistics()
        assert space.join_selectivity == 0.005
        assert space.blocking_factor == 10

    def test_validation(self):
        with pytest.raises(EvaluationError):
            SpaceStatistics(join_selectivity=0)
        with pytest.raises(EvaluationError):
            SpaceStatistics(blocking_factor=0)

    def test_unregistered_relation_gets_defaults(self):
        space = SpaceStatistics()
        assert space.cardinality("anything") == DEFAULT_CARDINALITY
        assert space.tuple_size("anything") == DEFAULT_TUPLE_SIZE
        assert space.selectivity("anything") == DEFAULT_SELECTIVITY

    def test_register_simple(self):
        space = SpaceStatistics()
        space.register_simple("R", 1000, 50, 0.2)
        assert space.cardinality("R") == 1000
        assert space.tuple_size("R") == 50
        assert space.selectivity("R") == 0.2

    def test_rename_keeps_statistics(self):
        space = SpaceStatistics()
        space.register_simple("R", 777)
        space.rename_relation("R", "R2")
        assert space.cardinality("R2") == 777
        assert space.cardinality("R") == DEFAULT_CARDINALITY

    def test_rename_unregistered_is_noop(self):
        SpaceStatistics().rename_relation("nope", "other")

    def test_forget(self):
        space = SpaceStatistics()
        space.register_simple("R", 777)
        space.forget_relation("R")
        assert space.cardinality("R") == DEFAULT_CARDINALITY

    def test_copy_is_independent(self):
        space = SpaceStatistics()
        space.register_simple("R", 777)
        duplicate = space.copy()
        duplicate.register_simple("R", 1)
        assert space.cardinality("R") == 777
