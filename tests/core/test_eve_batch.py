"""Indexed, batched change dispatch through ``EVESystem.apply_changes``."""

import pytest

from repro.config import SearchConfig, SystemConfig
from repro.core.eve import EVESystem
from repro.esql.evaluator import evaluate_view
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import (
    DeleteAttribute,
    DeleteRelation,
    RenameAttribute,
    RenameRelation,
)
from repro.sync.legality import check_legality
from repro.sync.pipeline import SearchPolicy


def build_system():
    eve = EVESystem()
    eve.add_source("IS1")
    eve.add_source("IS2")
    eve.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B", "C"]), [(1, 10, 7), (2, 20, 7)]),
    )
    eve.register_relation(
        "IS2",
        Relation(Schema("T", ["A", "B", "C"]), [(1, 10, 7), (3, 30, 9)]),
    )
    eve.register_relation("IS2", Relation(Schema("U", ["X"]), [(5,)]))
    eve.mkb.add_equivalence("R", "T", ["A", "B", "C"])
    eve.define_view(
        "CREATE VIEW V (VE = '~') AS "
        "SELECT R.A (AR = true), R.B (AD = true, AR = true) "
        "FROM R (RR = true)"
    )
    eve.define_view("CREATE VIEW W AS SELECT U.X FROM U")
    return eve


class TestBatchedDispatch:
    def test_batch_matches_sequential_changes(self):
        batch = [
            DeleteAttribute("IS1", "R", "C"),
            DeleteRelation("IS1", "R"),
        ]
        sequential = build_system()
        for change in batch:
            sequential.space.apply_change(change)
        batched = build_system()
        results = batched.apply_changes(batch)
        assert results  # at least the delete touched V
        assert sequential.vkb.current("V") == batched.vkb.current("V")
        assert sorted(sequential.extent("V").rows) == sorted(
            batched.extent("V").rows
        )
        assert sequential.generations("V") == batched.generations("V")

    def test_batch_results_land_in_sync_log(self):
        eve = build_system()
        results = eve.apply_changes([DeleteRelation("IS1", "R")])
        assert list(eve.synchronization_log) == results
        result = results[0]
        assert result.counters is not None
        assert result.counters.assessed >= 1
        assert result.policy == SearchPolicy.pruned()

    def test_unreferenced_changes_touch_no_view(self):
        eve = build_system()
        # U is referenced by W but the renamed attribute is unused by V;
        # deleting T (unreferenced) must not synchronize anything either.
        results = eve.apply_changes(
            [
                DeleteRelation("IS2", "T"),
                RenameAttribute("IS1", "R", "C", "C9"),
            ]
        )
        assert results == []
        assert eve.generations("V") == 0
        assert eve.generations("W") == 0

    def test_rewriting_composes_later_batch_changes(self):
        # V is rewritten from R onto T by the first change; the second
        # change renames an attribute of T.  Synchronizing against the
        # post-batch MKB composes both: the replacement lands directly on
        # the renamed column, reaching the sequential end state in fewer
        # generations.
        batch = [
            DeleteRelation("IS1", "R"),
            RenameAttribute("IS2", "T", "A", "Alpha"),
        ]
        sequential = build_system()
        for change in batch:
            sequential.space.apply_change(change)
        batched = build_system()
        batched.apply_changes(batch)
        assert sequential.vkb.current("V") == batched.vkb.current("V")
        assert 1 <= batched.generations("V") <= sequential.generations("V")
        refs = {
            str(item.ref) for item in batched.vkb.current("V").select
        }
        assert "T.Alpha" in refs
        assert sorted(batched.extent("V").rows) == sorted(
            sequential.extent("V").rows
        )

    def test_chained_attribute_renames_on_same_relation(self):
        # A batch can rename the same attribute twice; the second change
        # addresses a name that only exists mid-batch, so it is invisible
        # to the pre-batch affectedness scan and must be re-queued when
        # the first synchronization rewrites the view.
        batch = [
            RenameAttribute("IS1", "R", "A", "A1"),
            RenameAttribute("IS1", "R", "A1", "A2"),
        ]
        sequential = build_system()
        for change in batch:
            sequential.space.apply_change(change)
        batched = build_system()
        batched.apply_changes(batch)
        assert sequential.vkb.current("V") == batched.vkb.current("V")
        refs = {str(item.ref) for item in batched.vkb.current("V").select}
        assert "R.A2" in refs
        assert sorted(batched.extent("V").rows) == sorted(
            sequential.extent("V").rows
        )

    def test_rename_then_delete_attribute_chain(self):
        batch = [
            RenameAttribute("IS1", "R", "B", "B1"),
            DeleteAttribute("IS1", "R", "B1"),
        ]
        sequential = build_system()
        for change in batch:
            sequential.space.apply_change(change)
        batched = build_system()
        batched.apply_changes(batch)
        assert sequential.vkb.current("V") == batched.vkb.current("V")
        assert sorted(batched.extent("V").rows) == sorted(
            sequential.extent("V").rows
        )

    def test_chained_relation_renames(self):
        from repro.space.changes import RenameRelation

        batch = [
            RenameRelation("IS1", "R", "R2"),
            RenameRelation("IS1", "R2", "R3"),
        ]
        sequential = build_system()
        for change in batch:
            sequential.space.apply_change(change)
        batched = build_system()
        batched.apply_changes(batch)
        assert sequential.vkb.current("V") == batched.vkb.current("V")
        assert batched.vkb.current("V").relation_names == ("R3",)
        assert sorted(batched.extent("V").rows) == sorted(
            sequential.extent("V").rows
        )

    @pytest.mark.parametrize(
        "batch",
        [
            # attribute chain, then the relation itself renamed + deleted
            [
                RenameAttribute("IS1", "R", "A", "A1"),
                RenameAttribute("IS1", "R", "A1", "A2"),
                RenameRelation("IS1", "R", "R2"),
                DeleteRelation("IS1", "R2"),
            ],
            # attribute change followed by delete of the same relation
            [
                RenameAttribute("IS1", "R", "B", "B1"),
                DeleteRelation("IS1", "R"),
            ],
        ],
        ids=["rename-chain-then-delete", "touch-then-delete"],
    )
    def test_mixed_identity_chains_match_sequential(self, batch):
        sequential = build_system()
        for change in batch:
            sequential.space.apply_change(change)
        batched = build_system()
        batched.apply_changes(batch)
        assert sequential.vkb.current("V") == batched.vkb.current("V")
        assert sequential.is_alive("V") == batched.is_alive("V")
        if batched.is_alive("V"):
            assert sorted(batched.extent("V").rows) == sorted(
                sequential.extent("V").rows
            )

    def test_extent_rematerialized_once_and_correct(self):
        eve = build_system()
        eve.apply_changes(
            [
                DeleteRelation("IS1", "R"),
                RenameAttribute("IS2", "T", "B", "Beta"),
            ]
        )
        recomputed = evaluate_view(
            eve.vkb.current("V"), eve.space.relations()
        )
        assert sorted(eve.extent("V").rows) == sorted(recomputed.rows)
        for rewriting in eve.vkb.record("V").history:
            assert check_legality(rewriting).legal

    def test_dead_views_stay_dead_within_batch(self):
        eve = build_system()
        eve.apply_changes(
            [
                DeleteRelation("IS2", "U"),
                DeleteRelation("IS1", "R"),
            ]
        )
        assert not eve.is_alive("W")
        assert eve.is_alive("V")
        with pytest.raises(Exception):
            eve.extent("W")


class TestPolicyWiring:
    def test_system_policy_configurable(self):
        eve = EVESystem(
            config=SystemConfig(search=SearchConfig(policy="first_legal"))
        )
        assert eve.policy == SearchPolicy.first_legal()

    def test_per_call_policy_override(self):
        eve = build_system()
        eve.auto_synchronize = False
        eve.space.delete_relation("R")
        record = eve.vkb.record("V")
        result = eve.synchronize_view(
            record, DeleteRelation("IS1", "R"), policy="exhaustive"
        )
        assert result.policy == SearchPolicy.exhaustive()
        assert result.counters.pruned == 0

    def test_auto_sync_results_carry_counters(self):
        eve = build_system()
        eve.space.delete_relation("R")
        result = eve.synchronization_log[0]
        assert result.counters is not None
        assert result.counters.generated >= 1
        assert result.policy == SearchPolicy.pruned()
