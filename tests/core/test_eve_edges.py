"""Edge-case tests for the EVESystem facade."""

import pytest

from repro.core.eve import EVESystem
from repro.errors import WorkspaceError
from repro.misd.statistics import RelationStatistics
from repro.qc.workload import WorkloadModel, WorkloadSpec
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import DeleteRelation


@pytest.fixture
def eve():
    system = EVESystem(auto_synchronize=False)
    system.add_source("IS1")
    system.add_source("IS2")
    system.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B"]), [(1, 1), (2, 2)]),
        RelationStatistics(cardinality=2),
    )
    system.register_relation(
        "IS2",
        Relation(Schema("S", ["A", "B"]), [(1, 1), (2, 2), (3, 3)]),
        RelationStatistics(cardinality=3),
    )
    system.mkb.add_equivalence("R", "S", ["A", "B"])
    return system


class TestDefinitionEdges:
    def test_duplicate_view_rejected(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A FROM R")
        with pytest.raises(WorkspaceError):
            eve.define_view("CREATE VIEW V AS SELECT R.B FROM R")

    def test_invalid_view_rejected_before_registration(self, eve):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            eve.define_view("CREATE VIEW V AS SELECT R.Nope FROM R")
        assert "V" not in eve.vkb

    def test_view_over_missing_relation_rejected(self, eve):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            eve.define_view("CREATE VIEW V AS SELECT T.A FROM T")


class TestSynchronizationEdges:
    def test_manual_synchronize_with_workload(self, eve):
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A (AR = true), R.B (AR = true) "
            "FROM R (RR = true)"
        )
        eve.space.delete_relation("R")
        record = eve.vkb.record("V")
        result = eve.synchronize_view(
            record,
            DeleteRelation("IS1", "R"),
            workload=WorkloadSpec(WorkloadModel.M2_PER_RELATION, 5),
        )
        assert result.survived
        # Workload-aggregated cost: 5 updates' worth.
        assert result.chosen.cost.cf_m > 0

    def test_candidate_rewritings_with_dominated_spectrum(self, eve):
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A (AD = true, AR = true), "
            "R.B (AD = true, AR = true) FROM R (RR = true)",
            materialize=False,
        )
        eve.space.delete_relation("R")
        base = eve.candidate_rewritings("V", DeleteRelation("IS1", "R"))
        spectrum = eve.candidate_rewritings(
            "V", DeleteRelation("IS1", "R"), include_dominated=True
        )
        assert len(spectrum) > len(base)

    def test_sync_result_ranking_names(self, eve):
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A (AR = true), R.B (AR = true) "
            "FROM R (RR = true)"
        )
        eve.auto_synchronize = True
        eve.space.delete_relation("R")
        result = eve.synchronization_log[0]
        assert result.ranking()[0] == result.chosen.name
        assert result.view_name == "V"
        assert result.change.relation == "R"

    def test_unmaterialized_view_synchronizes_without_extent(self, eve):
        eve.auto_synchronize = True
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A (AR = true), R.B (AR = true) "
            "FROM R (RR = true)",
            materialize=False,
        )
        eve.space.delete_relation("R")
        assert eve.is_alive("V")
        from repro.errors import SynchronizationError

        with pytest.raises(SynchronizationError):
            eve.extent("V")

    def test_dead_view_not_resynchronized(self, eve):
        eve.auto_synchronize = True
        eve.define_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        # No replaceability flags: the view dies.
        eve.space.delete_relation("R")
        assert not eve.is_alive("V")
        log_size = len(eve.synchronization_log)
        # Further changes leave the dead view alone.
        eve.space.delete_relation("S")
        assert len(eve.synchronization_log) == log_size


class TestMaintenanceEdges:
    def test_update_on_unmaterialized_view_is_ignored(self, eve):
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A FROM R", materialize=False
        )
        eve.space.insert("R", (9, 9))  # must not raise

    def test_multiple_views_maintained_in_one_update(self, eve):
        eve.define_view("CREATE VIEW V1 AS SELECT R.A FROM R")
        eve.define_view("CREATE VIEW V2 AS SELECT R.B FROM R")
        eve.space.insert("R", (7, 8))
        assert (7,) in eve.extent("V1").rows
        assert (8,) in eve.extent("V2").rows
