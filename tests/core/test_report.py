"""Unit tests for report formatting."""

from repro.core.report import format_ranking, format_table
from repro.qc.cost import CostAssessment
from repro.qc.model import Evaluation
from repro.qc.quality import QualityAssessment
from repro.qc.view_size import ExtentNumbers
from repro.esql.parser import parse_view
from repro.sync.rewriting import Rewriting


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["X", "Longer"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("X")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title_prepended(self):
        text = format_table(["A"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_rendering(self):
        text = format_table(["A"], [[0.123456]])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = format_table(["A", "B"], [])
        assert len(text.splitlines()) == 2


class TestFormatRanking:
    def test_renders_all_columns(self):
        view = parse_view("CREATE VIEW V1 AS SELECT R.A FROM R")
        evaluation = Evaluation(
            rewriting=Rewriting(view, view),
            quality=QualityAssessment(
                0.0, 0.5, 0.0, 0.25, 0.075, ExtentNumbers(4, 2, 2)
            ),
            cost=CostAssessment(3, 1200, 10, 842.3),
            normalized_cost=0.0,
            qc=0.9325,
            rank=1,
        )
        text = format_ranking([evaluation], title="T")
        assert "V1" in text
        assert "842.3" in text
        assert "0.93250" in text
        assert "Rating" in text
