"""Tests for the typed event/observer bus on EVESystem."""

import pytest

from repro.config import ScheduleConfig, SystemConfig
from repro.errors import ConfigurationError
from repro.events import (
    BatchScheduled,
    CacheInvalidated,
    DegradedToFirstLegal,
    EventBus,
    SynchronizationDeferred,
    SystemEvent,
    ViewMaintained,
    ViewSynchronized,
)
from repro.core.eve import EVESystem
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import DeleteRelation


def build_system(**kwargs):
    """One replaceable view over R with a mirror donor."""
    eve = EVESystem(**kwargs)
    eve.add_source("IS1")
    eve.add_source("IS2")
    eve.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B"]), [(1, 10), (2, 20)]),
        RelationStatistics(cardinality=2),
    )
    eve.register_relation(
        "IS2",
        Relation(Schema("RM", ["A", "B"]), [(1, 10), (2, 20)]),
        RelationStatistics(cardinality=2),
    )
    eve.mkb.add_equivalence("R", "RM", ["A", "B"])
    eve.define_view(
        "CREATE VIEW V (VE = '~') AS "
        "SELECT R.A (AR = true), R.B (AD = true, AR = true) "
        "FROM R (RR = true)"
    )
    return eve


# ----------------------------------------------------------------------
# The bus itself
# ----------------------------------------------------------------------
class TestEventBus:
    def test_subscribe_by_class_and_by_name(self):
        bus = EventBus()
        seen = []
        bus.subscribe(CacheInvalidated, seen.append)
        bus.subscribe("CacheInvalidated", seen.append)
        bus.emit(CacheInvalidated("test"))
        assert len(seen) == 2

    def test_unknown_event_name_rejected(self):
        with pytest.raises(ConfigurationError, match="ViewExploded"):
            EventBus().subscribe("ViewExploded", print)
        with pytest.raises(ConfigurationError):
            EventBus().subscribe(int, print)

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        bus.subscribe(CacheInvalidated, seen.append)
        bus.unsubscribe(CacheInvalidated, seen.append)
        bus.unsubscribe(CacheInvalidated, seen.append)  # no-op twice
        bus.emit(CacheInvalidated("test"))
        assert seen == []

    def test_firehose_receives_every_type(self):
        bus = EventBus()
        seen = []
        bus.subscribe(SystemEvent, seen.append)
        bus.emit(CacheInvalidated("a"))
        assert [type(e) for e in seen] == [CacheInvalidated]

    def test_wants_guards_payload_construction(self):
        bus = EventBus()
        assert not bus.wants(ViewMaintained)
        bus.subscribe(ViewMaintained, lambda e: None)
        assert bus.wants(ViewMaintained)
        assert not bus.wants(ViewSynchronized)
        bus.subscribe(SystemEvent, lambda e: None)
        assert bus.wants(ViewSynchronized)  # firehose listens to all

    def test_subscribe_returns_handler_for_decorator_use(self):
        bus = EventBus()

        @lambda fn: bus.subscribe(CacheInvalidated, fn)
        def handler(event):
            pass

        assert bus.wants(CacheInvalidated)


# ----------------------------------------------------------------------
# System emissions
# ----------------------------------------------------------------------
class TestSystemEvents:
    def test_view_synchronized_on_capability_change(self):
        eve = build_system()
        seen = []
        eve.subscribe(ViewSynchronized, seen.append)
        eve.space.delete_relation("R")
        assert [e.view_name for e in seen] == ["V"]
        (event,) = seen
        assert event.survived
        assert event.result is eve.synchronization_log[0]
        assert event.counters is event.result.counters
        assert isinstance(event.change, DeleteRelation)

    def test_view_synchronized_per_batch_result(self):
        eve = build_system()
        seen = []
        eve.subscribe(ViewSynchronized, seen.append)
        results = eve.apply_changes([DeleteRelation("IS1", "R")])
        assert [e.result for e in seen] == results

    def test_batch_scheduled_carries_schedule_report(self):
        eve = build_system()
        seen = []
        eve.subscribe(BatchScheduled, seen.append)
        eve.apply_changes([DeleteRelation("IS1", "R")])
        assert [e.report for e in seen] == list(eve.last_schedule)

    def test_view_maintained_on_listener_path(self):
        eve = build_system()
        seen = []
        eve.subscribe(ViewMaintained, seen.append)
        eve.space.insert("R", (3, 30))
        (event,) = seen
        assert event.view_name == "V"
        assert event.relations == ("R",)
        assert event.updates == 1
        assert event.counters.messages > 0

    def test_view_maintained_on_batched_flushes(self):
        eve = build_system()
        seen = []
        eve.subscribe(ViewMaintained, seen.append)
        eve.apply_updates(
            [("R", "insert", (3, 30)), ("R", "insert", (4, 40))]
        )
        (event,) = seen  # one flush for the single-relation batch
        assert event.updates == 2
        assert (3, 30) in eve.extent("V").rows

    def test_degraded_event_names_the_budget(self):
        eve = build_system(
            config=SystemConfig(
                schedule=ScheduleConfig(budget=0.0, degrade="first_legal")
            )
        )
        degraded = []
        eve.subscribe(DegradedToFirstLegal, degraded.append)
        eve.apply_changes([DeleteRelation("IS1", "R")])
        (event,) = degraded
        assert event.view_name == "V"
        assert event.budget == 0.0

    def test_deferred_event_carries_resumable_record(self):
        eve = build_system(
            config=SystemConfig(
                schedule=ScheduleConfig(budget=0.0, degrade="defer")
            )
        )
        deferred = []
        eve.subscribe(SynchronizationDeferred, deferred.append)
        eve.apply_changes([DeleteRelation("IS1", "R")])
        (event,) = deferred
        assert event.view_name == "V"
        assert event.record in eve.last_schedule[0].deferred

    def test_cache_invalidated_reasons(self):
        eve = build_system()
        reasons = []
        eve.subscribe(CacheInvalidated, lambda e: reasons.append(e.reason))
        eve.register_relation(
            "IS1", Relation(Schema("X", ["A"])), RelationStatistics(1)
        )
        eve.space.delete_relation("X")
        assert reasons == ["relation-registered", "capability-change"]

    def test_unobserved_systems_pay_nothing(self):
        # No subscription: the guard skips event construction entirely,
        # so behaviour (and results) are identical with and without bus.
        plain = build_system()
        observed = build_system()
        observed.subscribe(SystemEvent, lambda e: None)
        plain.space.delete_relation("R")
        observed.space.delete_relation("R")
        assert (
            plain.synchronization_log[0].chosen.qc
            == observed.synchronization_log[0].chosen.qc
        )
