"""Unit tests for the EVESystem facade."""

import pytest

from repro.core.eve import EVESystem
from repro.errors import SynchronizationError
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import DeleteRelation


@pytest.fixture
def eve():
    system = EVESystem()
    system.add_source("IS1")
    system.add_source("IS2")
    system.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B"]), [(1, 10), (2, 20)]),
        RelationStatistics(cardinality=2),
    )
    system.register_relation(
        "IS2",
        Relation(Schema("S", ["A", "B"]), [(1, 10), (2, 20), (3, 30)]),
        RelationStatistics(cardinality=3),
    )
    return system


class TestViewLifecycle:
    def test_define_parses_and_materializes(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A FROM R")
        assert eve.extent("V").rows == [(1,), (2,)]

    def test_define_without_materialization(self, eve):
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A FROM R", materialize=False
        )
        with pytest.raises(SynchronizationError):
            eve.extent("V")

    def test_refresh_recomputes(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A FROM R")
        eve.space.source("IS1").relation("R").insert((3, 30))  # silent change
        assert eve.extent("V").cardinality == 2
        eve.refresh("V")
        assert eve.extent("V").cardinality == 3


class TestMaintenanceIntegration:
    def test_data_update_maintains_extent(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        eve.space.insert("R", (5, 50))
        assert (5, 50) in eve.extent("V").rows

    def test_delete_update_maintains_extent(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        eve.space.delete("R", (1, 10))
        assert (1, 10) not in eve.extent("V").rows

    def test_unrelated_update_ignored(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A FROM R")
        eve.space.insert("S", (9, 90))
        assert eve.extent("V").cardinality == 2


class TestSynchronizationIntegration:
    def test_auto_synchronization_on_change(self, eve):
        eve.mkb.add_equivalence("R", "S", ["A", "B"])
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A (AR = true), R.B (AR = true) "
            "FROM R (RR = true)"
        )
        eve.space.delete_relation("R")
        assert eve.is_alive("V")
        assert eve.vkb.current("V").relation_names == ("S",)
        assert eve.generations("V") == 1
        # The extent was re-materialized from the replacement relation.
        assert eve.extent("V").cardinality == 3
        assert len(eve.synchronization_log) == 1
        assert eve.synchronization_log[0].survived

    def test_view_dies_without_replacement(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        eve.space.delete_relation("R")
        assert not eve.is_alive("V")
        assert not eve.synchronization_log[0].survived
        with pytest.raises(SynchronizationError):
            eve.extent("V")

    def test_auto_synchronize_disabled(self, eve):
        eve.auto_synchronize = False
        eve.define_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        eve.space.delete_relation("R")
        assert eve.is_alive("V")
        assert eve.synchronization_log == ()

    def test_attribute_drop_synchronization(self, eve):
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A, R.B (AD = true) FROM R"
        )
        eve.space.delete_attribute("R", "B")
        assert eve.is_alive("V")
        assert eve.vkb.current("V").interface == ("A",)
        assert eve.extent("V").rows == [(1,), (2,)]

    def test_candidate_rewritings_non_committal(self, eve):
        eve.auto_synchronize = False
        eve.mkb.add_equivalence("R", "S", ["A", "B"])
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A (AD = true, AR = true), "
            "R.B (AD = true, AR = true) FROM R (RD = true, RR = true)"
        )
        eve.space.delete_relation("R")
        candidates = eve.candidate_rewritings(
            "V", DeleteRelation("IS1", "R")
        )
        assert candidates
        # Nothing committed: the VKB still holds the original.
        assert eve.vkb.current("V").relation_names == ("R",)

    def test_rank_rewritings_orders_best_first(self, eve):
        eve.auto_synchronize = False
        eve.mkb.add_equivalence("R", "S", ["A", "B"])
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A (AD = true, AR = true), "
            "R.B (AD = true, AR = true) FROM R (RR = true)",
            materialize=False,
        )
        eve.space.delete_relation("R")
        candidates = eve.candidate_rewritings("V", DeleteRelation("IS1", "R"))
        evaluations = eve.rank_rewritings(candidates)
        assert [e.rank for e in evaluations] == list(
            range(1, len(evaluations) + 1)
        )
        scores = [e.qc for e in evaluations]
        assert scores == sorted(scores, reverse=True)


class TestApplyUpdates:
    def test_batched_stream_maintains_materialized_views(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        counters = eve.apply_updates(
            [
                ("R", "insert", (3, 30)),
                ("R", "insert", (4, 40)),
                ("R", "delete", (1, 10)),
            ]
        )
        assert sorted(eve.extent("V").rows) == [(2, 20), (3, 30), (4, 40)]
        # One notification per update, nothing else (single-site view).
        assert counters.messages == 3

    def test_unmaterialized_views_are_skipped(self, eve):
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A FROM R", materialize=False
        )
        counters = eve.apply_updates([("R", "insert", (5, 50))])
        assert counters.messages == 0
        assert eve.space.relation("R").cardinality == 3

    def test_updates_on_unreferenced_relations_cost_nothing(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A FROM R")
        counters = eve.apply_updates([("S", "insert", (9, 90))])
        assert counters.messages == 0
        assert eve.space.relation("S").cardinality == 4

    def test_interleaved_stream_flushes_at_join_boundaries(self, eve):
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A, S.B FROM R, S WHERE R.A = S.A"
        )
        eve.apply_updates(
            [
                ("R", "insert", (3, 30)),
                ("S", "insert", (3, 33)),  # forces a flush of R's pending
                ("R", "insert", (3, 31)),
            ]
        )
        from repro.esql.evaluator import evaluate_view

        recomputed = evaluate_view(
            eve.vkb.current("V"), eve.space.relations()
        )
        assert sorted(eve.extent("V").rows) == sorted(recomputed.rows)

    def test_per_update_listener_still_fires_outside_batches(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        eve.space.insert("R", (7, 70))
        assert (7, 70) in eve.extent("V").rows

    def test_failed_stream_still_flushes_updates_that_landed(self, eve):
        from repro.errors import MaintenanceError

        eve.define_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        with pytest.raises(MaintenanceError):
            eve.apply_updates(
                [
                    ("R", "insert", (3, 30)),
                    ("R", "delete", (9, 99)),  # not present: raises
                ]
            )
        # The insert reached the source before the failure, so the
        # extent must reflect it — the sequential protocol would have
        # maintained it before the delete was even attempted.
        assert (3, 30) in eve.extent("V").rows
        # And the system is not left in the deferred-maintenance state.
        eve.space.insert("R", (4, 40))
        assert (4, 40) in eve.extent("V").rows

    def test_one_failing_flush_does_not_starve_other_views(self, eve):
        from repro.errors import MaintenanceError

        eve.define_view("CREATE VIEW V1 AS SELECT R.A, R.B FROM R")
        eve.define_view("CREATE VIEW V2 AS SELECT R.A, R.B FROM R")
        # Corrupt V1's extent behind the maintainer's back so its flush
        # fails on the delete propagation.
        eve.extent("V1").delete((1, 10))
        with pytest.raises(MaintenanceError, match="inconsistent"):
            eve.apply_updates(
                [
                    ("R", "insert", (3, 30)),
                    ("R", "delete", (1, 10)),
                ]
            )
        # V2's flush still ran: it reflects both landed updates.
        assert sorted(eve.extent("V2").rows) == [(2, 20), (3, 30)]
