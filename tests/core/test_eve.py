"""Unit tests for the EVESystem facade."""

import pytest

from repro.core.eve import EVESystem
from repro.errors import SynchronizationError
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import DeleteAttribute, DeleteRelation


@pytest.fixture
def eve():
    system = EVESystem()
    system.add_source("IS1")
    system.add_source("IS2")
    system.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B"]), [(1, 10), (2, 20)]),
        RelationStatistics(cardinality=2),
    )
    system.register_relation(
        "IS2",
        Relation(Schema("S", ["A", "B"]), [(1, 10), (2, 20), (3, 30)]),
        RelationStatistics(cardinality=3),
    )
    return system


class TestViewLifecycle:
    def test_define_parses_and_materializes(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A FROM R")
        assert eve.extent("V").rows == [(1,), (2,)]

    def test_define_without_materialization(self, eve):
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A FROM R", materialize=False
        )
        with pytest.raises(SynchronizationError):
            eve.extent("V")

    def test_refresh_recomputes(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A FROM R")
        eve.space.source("IS1").relation("R").insert((3, 30))  # silent change
        assert eve.extent("V").cardinality == 2
        eve.refresh("V")
        assert eve.extent("V").cardinality == 3


class TestMaintenanceIntegration:
    def test_data_update_maintains_extent(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        eve.space.insert("R", (5, 50))
        assert (5, 50) in eve.extent("V").rows

    def test_delete_update_maintains_extent(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        eve.space.delete("R", (1, 10))
        assert (1, 10) not in eve.extent("V").rows

    def test_unrelated_update_ignored(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A FROM R")
        eve.space.insert("S", (9, 90))
        assert eve.extent("V").cardinality == 2


class TestSynchronizationIntegration:
    def test_auto_synchronization_on_change(self, eve):
        eve.mkb.add_equivalence("R", "S", ["A", "B"])
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A (AR = true), R.B (AR = true) "
            "FROM R (RR = true)"
        )
        eve.space.delete_relation("R")
        assert eve.is_alive("V")
        assert eve.vkb.current("V").relation_names == ("S",)
        assert eve.generations("V") == 1
        # The extent was re-materialized from the replacement relation.
        assert eve.extent("V").cardinality == 3
        assert len(eve.synchronization_log) == 1
        assert eve.synchronization_log[0].survived

    def test_view_dies_without_replacement(self, eve):
        eve.define_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        eve.space.delete_relation("R")
        assert not eve.is_alive("V")
        assert not eve.synchronization_log[0].survived
        with pytest.raises(SynchronizationError):
            eve.extent("V")

    def test_auto_synchronize_disabled(self, eve):
        eve.auto_synchronize = False
        eve.define_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        eve.space.delete_relation("R")
        assert eve.is_alive("V")
        assert eve.synchronization_log == ()

    def test_attribute_drop_synchronization(self, eve):
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A, R.B (AD = true) FROM R"
        )
        eve.space.delete_attribute("R", "B")
        assert eve.is_alive("V")
        assert eve.vkb.current("V").interface == ("A",)
        assert eve.extent("V").rows == [(1,), (2,)]

    def test_candidate_rewritings_non_committal(self, eve):
        eve.auto_synchronize = False
        eve.mkb.add_equivalence("R", "S", ["A", "B"])
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A (AD = true, AR = true), "
            "R.B (AD = true, AR = true) FROM R (RD = true, RR = true)"
        )
        eve.space.delete_relation("R")
        candidates = eve.candidate_rewritings(
            "V", DeleteRelation("IS1", "R")
        )
        assert candidates
        # Nothing committed: the VKB still holds the original.
        assert eve.vkb.current("V").relation_names == ("R",)

    def test_rank_rewritings_orders_best_first(self, eve):
        eve.auto_synchronize = False
        eve.mkb.add_equivalence("R", "S", ["A", "B"])
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A (AD = true, AR = true), "
            "R.B (AD = true, AR = true) FROM R (RR = true)",
            materialize=False,
        )
        eve.space.delete_relation("R")
        candidates = eve.candidate_rewritings("V", DeleteRelation("IS1", "R"))
        evaluations = eve.rank_rewritings(candidates)
        assert [e.rank for e in evaluations] == list(
            range(1, len(evaluations) + 1)
        )
        scores = [e.qc for e in evaluations]
        assert scores == sorted(scores, reverse=True)
