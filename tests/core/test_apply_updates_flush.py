"""The join-graph flush analysis of EVESystem.apply_updates.

The boundary rule: a pending batch flushes before an update lands on a
*different* relation the view references only when the incoming row can
actually reach a pending delta through the view's join graph.  Rows
excluded by every edge (failed equijoin key, failed local selection)
keep the batch growing — with extents and modeled counters still
byte-identical to the sequential per-update protocol (the enqueue-time
cardinality snapshots price the deferred flush exactly).
"""

import pytest

from repro.core.eve import EVESystem
from repro.errors import MaintenanceError
from repro.events import ViewMaintained
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.space import InformationSpace


def build_eve(view_text, r_rows=((1, 10), (2, 20)), s_rows=((1, 5), (2, 6))):
    space = InformationSpace()
    space.add_source("IS1")
    space.add_source("IS2")
    space.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B"]), list(r_rows)),
        RelationStatistics(cardinality=max(len(r_rows), 1)),
    )
    space.register_relation(
        "IS2",
        Relation(Schema("S", ["A", "C"]), list(s_rows)),
        RelationStatistics(cardinality=max(len(s_rows), 1)),
    )
    eve = EVESystem(space=space, auto_synchronize=False)
    eve.define_view(view_text)
    return eve


def run_with_flush_count(view_text, stream, **kwargs):
    eve = build_eve(view_text, **kwargs)
    flushes = []
    eve.subscribe(ViewMaintained, flushes.append)
    counters = eve.apply_updates(stream)
    return eve, flushes, counters


def sequential_reference(view_text, stream, **kwargs):
    """The per-update listener path: apply each update, maintain at once."""
    eve = build_eve(view_text, **kwargs)
    for relation, kind, row in stream:
        if kind == "insert":
            eve.space.insert(relation, row)
        else:
            eve.space.delete(relation, row)
    return eve


EQUIJOIN = "CREATE VIEW V AS SELECT R.A, S.C FROM R, S WHERE R.A = S.A"
THETA = "CREATE VIEW V AS SELECT R.A, S.C FROM R, S WHERE R.B < S.C"
FILTERED = (
    "CREATE VIEW V AS SELECT R.A, S.C FROM R, S "
    "WHERE R.A = S.A AND S.C > 4"
)


def assert_matches_sequential(view_text, stream, **kwargs):
    eve, flushes, counters = run_with_flush_count(
        view_text, stream, **kwargs
    )
    reference = sequential_reference(view_text, stream, **kwargs)
    assert sorted(eve.extent("V").rows) == sorted(
        reference.extent("V").rows
    )
    charged = (
        counters.messages,
        counters.bytes_transferred,
        counters.io_operations,
    )
    ref = reference.maintainer.counters
    assert charged == (
        ref.messages, ref.bytes_transferred, ref.io_operations
    )
    return eve, flushes


class TestJoinGraphBatching:
    def test_unjoinable_key_does_not_flush(self):
        # The S row's join key (99) matches no pending R delta (7, 8),
        # so the whole stream is one flush despite the boundary.
        stream = [
            ("R", "insert", (7, 70)),
            ("R", "insert", (8, 80)),
            ("S", "insert", (99, 9)),
            ("R", "insert", (7, 71)),
        ]
        _, flushes = assert_matches_sequential(EQUIJOIN, stream)
        assert len(flushes) == 1
        assert flushes[0].updates == 4
        assert flushes[0].relations == ("R", "S")

    def test_joinable_key_flushes(self):
        # S row with key 7 joins the pending R delta: flush first.
        stream = [
            ("R", "insert", (7, 70)),
            ("S", "insert", (7, 9)),
            ("R", "insert", (8, 80)),
        ]
        _, flushes = assert_matches_sequential(EQUIJOIN, stream)
        assert [flush.updates for flush in flushes] == [1, 2]

    def test_failed_local_selection_does_not_flush(self):
        # S.C = 1 fails the view's S.C > 4 selection: the row can never
        # appear in any propagation, even though its key matches.
        stream = [
            ("R", "insert", (7, 70)),
            ("S", "insert", (7, 1)),
            ("R", "insert", (7, 72)),
        ]
        _, flushes = assert_matches_sequential(FILTERED, stream)
        assert len(flushes) == 1

    def test_theta_edge_conservatively_flushes(self):
        # R.B < S.C is decidable for the (seed, row) pair and holds,
        # so the row is reachable: the batch must flush.
        stream = [
            ("R", "insert", (7, 1)),
            ("S", "insert", (9, 50)),  # 1 < 50: joins the pending delta
        ]
        _, flushes = assert_matches_sequential(THETA, stream)
        assert len(flushes) == 2

    def test_theta_edge_excluding_row_does_not_flush(self):
        # 90 < 3 fails for the only pending delta: batching is safe
        # even under a non-equijoin edge, when it is decidably false.
        stream = [
            ("R", "insert", (7, 90)),
            ("S", "insert", (9, 3)),
            ("R", "insert", (8, 91)),
        ]
        _, flushes = assert_matches_sequential(THETA, stream)
        assert len(flushes) == 1

    def test_deletes_use_the_same_analysis(self):
        stream = [
            ("R", "insert", (7, 70)),
            ("S", "delete", (2, 6)),  # key 2 reaches no pending delta
            ("R", "insert", (8, 80)),
            ("S", "delete", (1, 5)),  # but key 1... still no pending 1
        ]
        _, flushes = assert_matches_sequential(EQUIJOIN, stream)
        assert len(flushes) == 1

    def test_deferred_flush_prices_sequential_cardinalities(self):
        # The skipped S insert changes |S|; the pending R deltas must
        # still charge modeled I/O against |S| as it was when each
        # update was enqueued (what the sequential protocol charged).
        # assert_matches_sequential compares the counters byte for byte.
        stream = [
            ("R", "insert", (7, 70)),
            ("S", "insert", (99, 9)),
            ("S", "insert", (98, 9)),
            ("R", "insert", (8, 80)),
            ("S", "insert", (97, 9)),
        ]
        _, flushes = assert_matches_sequential(
            EQUIJOIN, stream, s_rows=tuple((k, 5) for k in range(1, 40))
        )
        assert len(flushes) == 1

    def test_interleaved_matching_storm_flushes_every_matching_edge(self):
        # Each S_k joins the R_k pending right before it, so those
        # boundaries flush — but each following R_{k+1} does NOT join
        # the pending S_k (keys differ), so the batch re-grows across
        # it.  The relation-identity rule flushed all 8 boundaries; the
        # join-graph rule flushes only the 4 reachable ones (plus the
        # end-of-stream flush), with identical extents and counters.
        stream = []
        for k in range(4):
            stream.append(("R", "insert", (k, k)))
            stream.append(("S", "insert", (k, 9)))
        _, flushes = assert_matches_sequential(EQUIJOIN, stream)
        assert len(flushes) == 5

    def test_analysis_limit_flushes_oversized_batches(self):
        limit = EVESystem._JOIN_ANALYSIS_LIMIT
        stream = [("R", "insert", (5, k)) for k in range(limit + 1)]
        stream.append(("S", "insert", (99, 9)))  # unjoinable, but > limit
        _, flushes = assert_matches_sequential(EQUIJOIN, stream)
        assert len(flushes) == 2


class TestRelationSizesContract:
    def test_mismatched_overlay_length_rejected(self):
        eve = build_eve(EQUIJOIN)
        update = eve.space.insert("R", (9, 90))
        view = eve.vkb.current("V")
        with pytest.raises(MaintenanceError, match="overlay"):
            eve.maintainer.maintain_batch(
                view, eve.extent("V"), [update], relation_sizes=[{}, {}]
            )

    def test_overlay_overrides_live_cardinality(self):
        # Price S as if it still had 1 row while it actually has 2:
        # the overlaid charge must equal a real 1-row-S propagation.
        small = build_eve(EQUIJOIN, s_rows=((1, 5),))
        update = small.space.insert("R", (9, 90))
        reference = small.maintainer.maintain(
            small.vkb.current("V"), small.extent("V"), update
        )

        grown = build_eve(EQUIJOIN, s_rows=((1, 5), (2, 6)))
        update = grown.space.insert("R", (9, 90))
        charged = grown.maintainer.maintain_batch(
            grown.vkb.current("V"),
            grown.extent("V"),
            [update],
            relation_sizes=[{"S": 1}],
        )
        assert (
            charged.messages,
            charged.bytes_transferred,
            charged.io_operations,
        ) == (
            reference.messages,
            reference.bytes_transferred,
            reference.io_operations,
        )
