"""Tests for the serializable per-call SystemReport."""

import json

from repro.config import ScheduleConfig, SystemConfig
from repro.core.eve import EVESystem
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.report import REPORT_SCHEMA_VERSION, SystemReport
from repro.space.changes import DeleteRelation


def build_system(**kwargs):
    eve = EVESystem(**kwargs)
    eve.add_source("IS1")
    eve.add_source("IS2")
    eve.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B"]), [(1, 10), (2, 20)]),
        RelationStatistics(cardinality=2),
    )
    eve.register_relation(
        "IS2",
        Relation(Schema("RM", ["A", "B"]), [(1, 10), (2, 20)]),
        RelationStatistics(cardinality=2),
    )
    eve.mkb.add_equivalence("R", "RM", ["A", "B"])
    eve.define_view(
        "CREATE VIEW V (VE = '~') AS "
        "SELECT R.A (AR = true), R.B (AD = true, AR = true) "
        "FROM R (RR = true)"
    )
    return eve


class TestApplyChangesReport:
    def test_report_aggregates_results_and_schedule(self):
        eve = build_system()
        results = eve.apply_changes([DeleteRelation("IS1", "R")])
        report = eve.last_report
        assert report.operation == "apply_changes"
        assert [r.view for r in report.synchronizations] == ["V"]
        (record,) = report.synchronizations
        assert record.survived
        assert record.qc == results[0].chosen.qc
        assert record.policy == "pruned"
        assert report.schedules == eve.last_schedule
        assert report.counters.legal >= 1

    def test_degradation_and_deferral_surface(self):
        eve = build_system(
            config=SystemConfig(
                schedule=ScheduleConfig(budget=0.0, degrade="defer")
            )
        )
        eve.apply_changes([DeleteRelation("IS1", "R")])
        report = eve.last_report
        assert report.deferred_views == ("V",)
        assert report.synchronizations == ()
        payload = report.to_dict()
        assert payload["schedule"]["deferred"] == ["V"]
        assert payload["schedule"]["batches"][0]["budget"] == 0.0

    def test_to_dict_schema_shape(self):
        eve = build_system()
        eve.apply_changes([DeleteRelation("IS1", "R")])
        payload = eve.last_report.to_dict()
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert set(payload) == {
            "schema_version",
            "operation",
            "synchronization",
            "schedule",
            "maintenance",
            "plans",
            "serving",
        }
        sync = payload["synchronization"]
        assert sync["survived"] == 1 and sync["undefined"] == 0
        (view_row,) = sync["views"]
        assert set(view_row) == {
            "view", "change", "survived", "qc", "policy", "counters",
        }
        assert "DeleteRelation" in view_row["change"]
        (batch,) = payload["schedule"]["batches"]
        assert batch["executor"] == "serial"
        assert batch["views"] == 1
        # The empty half is present, not absent.
        assert payload["maintenance"]["flushes"] == []
        assert payload["maintenance"]["updates"] == 0
        # Serving is always present (schema v4); disabled by default.
        assert payload["serving"] == {
            "enabled": False,
            "version": 0,
            "published": 0,
            "staged": 0,
            "copied": 0,
            "pins": 0,
        }

    def test_serving_section_reflects_snapshot_activity(self):
        eve = build_system()
        eve.snapshot().release()  # arm the serving plane
        eve.apply_changes([DeleteRelation("IS1", "R")])
        serving = eve.last_report.to_dict()["serving"]
        assert serving["enabled"] is True
        assert serving["published"] == 1  # one atomic publish per batch
        assert serving["version"] == eve._extents.version
        assert serving["pins"] == 0
        # apply_changes rematerializes fresh extents: zero COW copies.
        assert serving["copied"] == 0

    def test_to_json_is_stable_and_parseable(self):
        eve = build_system()
        eve.apply_changes([DeleteRelation("IS1", "R")])
        wire = eve.last_report.to_json(indent=2)
        parsed = json.loads(wire)
        assert parsed == json.loads(eve.last_report.to_json())
        # sort_keys: serialization order is deterministic
        assert wire.index('"maintenance"') < wire.index('"operation"')


class TestApplyUpdatesReport:
    def test_report_records_flushes_and_counters(self):
        eve = build_system()
        charged = eve.apply_updates(
            [
                ("R", "insert", (3, 30)),
                ("R", "insert", (4, 40)),
                ("R", "delete", (1, 10)),
            ]
        )
        report = eve.last_report
        assert report.operation == "apply_updates"
        (flush,) = report.flushes
        assert flush.view == "V"
        assert flush.updates == 3
        assert flush.relations == ("R",)
        assert report.maintenance_counters == charged
        payload = report.to_dict()
        assert payload["maintenance"]["updates"] == 3
        assert (
            payload["maintenance"]["counters"]["messages"]
            == charged.messages
        )
        assert payload["synchronization"]["views"] == []
        json.loads(report.to_json())

    def test_kernels_surface_for_the_columnar_plane(self):
        eve = build_system(config=SystemConfig.columnar())
        eve.apply_updates([("R", "insert", (3, 30))])
        payload = eve.last_report.to_dict()
        kernels = payload["maintenance"]["kernels"]
        assert set(kernels) == {"rows_scanned", "rows_selected"}
        # Row planes report all-zero kernels through the same shape.
        row_plane = build_system()
        row_plane.apply_updates([("R", "insert", (3, 30))])
        zero = row_plane.last_report.to_dict()["maintenance"]["kernels"]
        assert zero == {"rows_scanned": 0, "rows_selected": 0}

    def test_each_call_replaces_the_report(self):
        eve = build_system()
        eve.apply_updates([("R", "insert", (3, 30))])
        first = eve.last_report
        eve.apply_changes([DeleteRelation("IS1", "R")])
        assert eve.last_report is not first
        assert eve.last_report.operation == "apply_changes"


class TestPlansSection:
    def test_apply_changes_captures_evaluation_plans(self):
        eve = build_system()
        eve.apply_changes([DeleteRelation("IS1", "R")])
        payload = eve.last_report.to_dict()
        assert payload["plans"]["total"] == 1
        (plan,) = payload["plans"]["views"]
        assert plan["kind"] == "evaluation"
        assert plan["view"] == "V"
        assert plan["actual_rows"] == 2
        assert all(
            step["access"] in ("index_probe", "scan")
            for step in plan["steps"]
        )

    def test_apply_updates_captures_maintenance_plans(self):
        eve = build_system()
        eve.apply_updates([("R", "insert", (3, 30))])
        payload = eve.last_report.to_dict()
        assert payload["plans"]["total"] == 1
        (plan,) = payload["plans"]["views"]
        assert plan["kind"] == "maintenance"
        assert plan["view"] == "V"
        assert plan["relation"] == "R"
        assert plan["actual"]["updates"] == 1
        assert plan["actual"]["messages"] >= 0

    def test_capture_is_capped_but_total_is_not(self):
        from repro.report import PLAN_CAPTURE_LIMIT

        eve = EVESystem()
        eve.add_source("IS1")
        eve.register_relation(
            "IS1",
            Relation(Schema("R", ["A", "B"]), [(1, 10)]),
            RelationStatistics(cardinality=1),
        )
        n = PLAN_CAPTURE_LIMIT + 4
        for i in range(n):
            eve.define_view(
                f"CREATE VIEW V{i:03d} AS SELECT R.A FROM R WHERE R.B > 0"
            )
        eve.apply_updates([("R", "insert", (2, 20))])
        payload = eve.last_report.to_dict()
        assert payload["plans"]["total"] == n
        assert len(payload["plans"]["views"]) == PLAN_CAPTURE_LIMIT
        # Deterministic choice: sorted view names.
        captured = [plan["view"] for plan in payload["plans"]["views"]]
        assert captured == sorted(captured)


class TestReportObject:
    def test_empty_report_serializes(self):
        report = SystemReport(operation="apply_changes")
        payload = report.to_dict()
        assert payload["synchronization"]["views"] == []
        assert payload["maintenance"]["counters"]["messages"] == 0
        assert payload["plans"] == {"views": [], "total": 0}
        json.loads(report.to_json())
