"""Tests for the typed configuration profiles.

Three contracts:

* every invalid field raises one consistent
  :class:`~repro.errors.ConfigurationError`, whatever subsystem the
  field configures;
* ``SystemConfig.from_dict(c.to_dict()) == c`` holds losslessly for the
  default and every named preset;
* the ``config=`` spellings are the only constructor spellings and
  never emit warnings (the pre-config legacy kwargs are gone).
"""

import json
import warnings

import pytest

from repro.config import (
    EngineConfig,
    MaintenanceConfig,
    ScheduleConfig,
    SearchConfig,
    SystemConfig,
)
from repro.core.eve import EVESystem
from repro.errors import ConfigurationError
from repro.esql.evaluator import evaluate_view
from repro.esql.parser import parse_view
from repro.maintenance.simulator import ViewMaintainer
from repro.misd.mkb import MetaKnowledgeBase
from repro.qc.model import QCModel
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.space import InformationSpace
from repro.sync.pipeline import RewritingSearchPipeline, SearchPolicy
from repro.sync.scheduler import SynchronizationScheduler
from repro.sync.synchronizer import ViewSynchronizer

ALL_PRESETS = {
    "default": SystemConfig(),
    "reference": SystemConfig.reference(),
    "fast": SystemConfig.fast(),
    "columnar": SystemConfig.columnar(),
    "sharded": SystemConfig.sharded(2),
    "bounded-units": SystemConfig.bounded(budget_units=25.0),
    "bounded-wall": SystemConfig.bounded(budget=1.5, degrade="defer"),
}


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestValidation:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: EngineConfig(engine="quantum"),
            lambda: SearchConfig(policy="psychic"),
            lambda: SearchConfig(policy="top_k"),  # missing k
            lambda: SearchConfig(policy="top_k", top_k=0),
            lambda: SearchConfig(policy="pruned", top_k=3),
            lambda: SearchConfig(policy="top_k(x)"),
            lambda: SearchConfig(policy="top_k(2)", top_k=3),
            lambda: SearchConfig(generators=("rename", "teleport")),
            lambda: ScheduleConfig(executor="rayon"),
            lambda: ScheduleConfig(degrade="drop"),
            lambda: ScheduleConfig(order="random"),
            lambda: ScheduleConfig(budget=-1.0),
            lambda: ScheduleConfig(budget_units=-0.5),
            lambda: ScheduleConfig(max_workers=0),
            lambda: ScheduleConfig(executor="workers", shards=0),
            lambda: ScheduleConfig(shards=2),  # needs executor="workers"
            lambda: MaintenanceConfig(representation="quantum"),
            lambda: EngineConfig(representation="rowwise"),
            lambda: EngineConfig(engine="naive", representation="columnar"),
            lambda: SystemConfig(engine="indexed"),  # not a slice
            lambda: SystemConfig.bounded(),  # no budget at all
        ],
        ids=[
            "engine-name",
            "policy-name",
            "top_k-missing",
            "top_k-zero",
            "top_k-on-pruned",
            "top_k-malformed",
            "top_k-conflict",
            "generator-name",
            "executor-name",
            "degrade-name",
            "order-name",
            "budget-negative",
            "budget_units-negative",
            "max_workers-zero",
            "shards-zero",
            "shards-without-workers",
            "representation-name",
            "engine-representation-name",
            "columnar-on-naive",
            "slice-type",
            "bounded-empty",
        ],
    )
    def test_invalid_values_raise_configuration_error(self, build):
        with pytest.raises(ConfigurationError):
            build()

    def test_error_messages_name_the_offender(self):
        with pytest.raises(ConfigurationError, match="rayon"):
            ScheduleConfig(executor="rayon")
        with pytest.raises(ConfigurationError, match="max_workers"):
            ScheduleConfig(max_workers=-3)
        with pytest.raises(ConfigurationError, match="teleport"):
            SearchConfig(generators=("teleport",))

    def test_top_k_string_spelling_normalizes(self):
        config = SearchConfig(policy="top_k(3)")
        assert (config.policy, config.top_k) == ("top_k", 3)
        assert config.search_policy() == SearchPolicy.top_k(3)
        assert config == SearchConfig(policy="top_k", top_k=3)

    def test_slices_accept_mappings(self):
        config = SystemConfig(engine={"engine": "naive"})
        assert config.engine == EngineConfig(engine="naive")

    def test_profiles_are_frozen_values(self):
        config = SystemConfig()
        with pytest.raises(AttributeError):
            config.engine = EngineConfig()
        assert SystemConfig() == SystemConfig()
        assert SystemConfig.fast() != SystemConfig.reference()


# ----------------------------------------------------------------------
# Serialization round trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("name", list(ALL_PRESETS))
    def test_to_dict_from_dict_is_lossless(self, name):
        config = ALL_PRESETS[name]
        assert SystemConfig.from_dict(config.to_dict()) == config

    @pytest.mark.parametrize("name", list(ALL_PRESETS))
    def test_round_trip_survives_json(self, name):
        config = ALL_PRESETS[name]
        wire = json.dumps(config.to_dict(), sort_keys=True)
        assert SystemConfig.from_dict(json.loads(wire)) == config

    def test_missing_sections_default(self):
        config = SystemConfig.from_dict({"engine": {"engine": "naive"}})
        assert config.engine.engine == "naive"
        assert config.schedule == ScheduleConfig()

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigurationError, match="warp"):
            SystemConfig.from_dict({"warp": {}})

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="speed"):
            SystemConfig.from_dict({"engine": {"speed": 11}})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig.from_dict("fast")
        with pytest.raises(ConfigurationError):
            SystemConfig.from_dict({"engine": "naive"})

    def test_sweep_helpers_replace_fields(self):
        swept = SystemConfig.fast().with_schedule(budget_units=9.0)
        assert swept.schedule.budget_units == 9.0
        assert swept.schedule.coalesce is True  # other fields kept
        assert SystemConfig().with_search(policy="first_legal") == (
            SystemConfig(search=SearchConfig(policy="first_legal"))
        )


# ----------------------------------------------------------------------
# Config-only constructor spellings
# ----------------------------------------------------------------------
def tiny_space():
    space = InformationSpace()
    space.add_source("IS1")
    space.register_relation(
        "IS1", Relation(Schema("R", ["A", "B"]), [(1, 2), (3, 4)])
    )
    return space


class TestConfigSpellings:
    def test_legacy_kwargs_are_gone(self):
        # The one-release DeprecationWarning shims were removed; the old
        # spellings now fail loudly as unexpected keyword arguments.
        with pytest.raises(TypeError):
            SynchronizationScheduler(executor="threads")
        with pytest.raises(TypeError):
            ViewMaintainer(tiny_space(), use_index=False)
        with pytest.raises(TypeError):
            EVESystem(policy="first_legal")
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        with pytest.raises(TypeError):
            evaluate_view(view, tiny_space().relations(), engine="naive")
        mkb = MetaKnowledgeBase()
        with pytest.raises(TypeError):
            RewritingSearchPipeline(
                ViewSynchronizer(mkb), QCModel(mkb), policy="pruned"
            )

    def test_config_spellings_never_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            EVESystem(config=SystemConfig.fast())
            SynchronizationScheduler(ScheduleConfig(executor="threads"))
            ViewMaintainer(
                tiny_space(),
                config=MaintenanceConfig(representation="dict"),
            )
            mkb = MetaKnowledgeBase()
            RewritingSearchPipeline(
                ViewSynchronizer(mkb),
                QCModel(mkb),
                config=SearchConfig(),
            )

    def test_per_call_policy_override_is_not_deprecated(self):
        space = tiny_space()
        pipeline = RewritingSearchPipeline(
            ViewSynchronizer(space.mkb),
            QCModel(space.mkb),
            config=SearchConfig(),
        )
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        from repro.space.changes import DeleteRelation

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            # A change on an unreferenced relation: the search returns
            # the identity rewriting without consulting the MKB routes.
            result = pipeline.search(
                view, DeleteRelation("IS9", "S"), policy="exhaustive"
            )
        assert result.survived


# ----------------------------------------------------------------------
# Engine slice semantics
# ----------------------------------------------------------------------
class TestEngineSlice:
    def test_use_index_false_matches_probed_extents(self):
        space = tiny_space()
        space.add_source("IS2")
        space.register_relation(
            "IS2", Relation(Schema("S", ["A", "C"]), [(1, 9), (3, 7)])
        )
        view = parse_view(
            "CREATE VIEW V AS SELECT R.B, S.C FROM R, S WHERE R.A = S.A"
        )
        probed = evaluate_view(view, space.relations())
        unprobed = evaluate_view(
            view, space.relations(), config=EngineConfig(use_index=False)
        )
        naive = evaluate_view(
            view, space.relations(), config=EngineConfig(engine="naive")
        )
        assert probed == unprobed == naive
