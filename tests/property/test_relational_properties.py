"""Property-based tests for the relational substrate's algebraic laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.algebra import (
    cs_intersection,
    difference,
    intersection,
    project,
    select,
    union,
)
from repro.relational.expressions import (
    AttributeRef,
    Comparator,
    Condition,
    Constant,
    PrimitiveClause,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema

SCHEMA = Schema("R", ["A", "B"])
OTHER = Schema("S", ["A", "B"])

rows = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=30
)


def relation(schema, data):
    return Relation(schema, data)


@given(rows)
@settings(max_examples=60)
def test_select_is_idempotent(data):
    r = relation(SCHEMA, data)
    condition = Condition.of(
        PrimitiveClause(AttributeRef("A"), Comparator.GT, Constant(10))
    )
    once = select(r, condition)
    twice = select(once, condition)
    assert once.rows == twice.rows


@given(rows)
@settings(max_examples=60)
def test_select_partitions_relation(data):
    r = relation(SCHEMA, data)
    condition = Condition.of(
        PrimitiveClause(AttributeRef("A"), Comparator.GT, Constant(10))
    )
    negation = Condition.of(
        PrimitiveClause(AttributeRef("A"), Comparator.LE, Constant(10))
    )
    kept = select(r, condition)
    dropped = select(r, negation)
    assert kept.cardinality + dropped.cardinality == r.cardinality


@given(rows)
@settings(max_examples=60)
def test_project_distinct_never_grows(data):
    r = relation(SCHEMA, data)
    projected = project(r, ["A"], distinct=True)
    assert projected.cardinality <= r.cardinality
    assert projected.cardinality == len({row[0] for row in data})


@given(rows, rows)
@settings(max_examples=60)
def test_union_commutes_as_sets(left_data, right_data):
    left = relation(SCHEMA, left_data)
    right = relation(OTHER, right_data)
    a = union(left, right).row_set()
    b = union(right, left).row_set()
    assert a == b


@given(rows, rows)
@settings(max_examples=60)
def test_intersection_is_subset_of_both(left_data, right_data):
    left = relation(SCHEMA, left_data)
    right = relation(OTHER, right_data)
    shared = intersection(left, right).row_set()
    assert shared <= left.row_set()
    assert shared <= right.row_set()


@given(rows, rows)
@settings(max_examples=60)
def test_difference_disjoint_from_right(left_data, right_data):
    left = relation(SCHEMA, left_data)
    right = relation(OTHER, right_data)
    missing = difference(left, right).row_set()
    assert missing.isdisjoint(right.row_set())
    assert missing | (left.row_set() & right.row_set()) == left.row_set()


@given(rows, rows)
@settings(max_examples=60)
def test_inclusion_exclusion_on_distinct_sets(left_data, right_data):
    left = relation(SCHEMA, left_data)
    right = relation(OTHER, right_data)
    u = union(left, right).cardinality
    i = intersection(left, right).cardinality
    assert u + i == len(left.row_set()) + len(right.row_set())


@given(rows, rows)
@settings(max_examples=60)
def test_cs_intersection_symmetric_in_cardinality(left_data, right_data):
    left = relation(SCHEMA, left_data)
    right = relation(Schema("S", ["B", "C"]), right_data)
    forward = cs_intersection(left, right).cardinality
    backward = cs_intersection(right, left).cardinality
    assert forward == backward
