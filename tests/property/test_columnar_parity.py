"""Property tests: the columnar plane equals the row planes.

The columnar plane's contract (ISSUE 6): for any update storm, the
column-at-a-time representation produces *identical delta rows, extents,
and byte-identical modeled CF_M/CF_T/CF_IO counters* to both the
dict-binding reference and the positional-tuple plane — per update,
through ``maintain_batch``, and through ``apply_updates`` flush
boundaries.  Kernels change execution only, never modeled accounting.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig, MaintenanceConfig, SystemConfig
from repro.core.eve import EVESystem
from repro.esql.evaluator import evaluate_view
from repro.esql.parser import parse_view
from repro.maintenance.delta import ColumnBatch, DeltaBatch
from repro.maintenance.simulator import ViewMaintainer
from repro.misd.statistics import RelationStatistics
from repro.relational.columnar import KernelCounters
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.space import InformationSpace

VALUES = st.integers(0, 6)
ROWS = st.tuples(VALUES, VALUES)

#: Same shape coverage as test_delta_parity: selections, equijoins,
#: theta clauses, a three-relation chain, and a pure cross join.
VIEWS = [
    "CREATE VIEW V AS SELECT R.A, R.B FROM R",
    "CREATE VIEW V AS SELECT R.A FROM R WHERE R.B > 2",
    "CREATE VIEW V AS SELECT R.A, S.C FROM R, S WHERE R.A = S.A",
    (
        "CREATE VIEW V AS SELECT R.B, S.C FROM R, S "
        "WHERE R.A = S.A AND S.C < 4"
    ),
    (
        "CREATE VIEW V AS SELECT R.A, S.C, T.D FROM R, S, T "
        "WHERE R.A = S.A AND S.C = T.D AND R.B <= T.D"
    ),
    # No equijoin link into S: exercises the cross-join (no-probe) kernel.
    "CREATE VIEW V AS SELECT R.A, S.C FROM R, S WHERE S.C > 1 AND R.B < 5",
]


@st.composite
def storm(draw):
    initial_r = draw(st.lists(ROWS, max_size=8))
    initial_s = draw(st.lists(ROWS, max_size=8))
    initial_t = draw(st.lists(ROWS, max_size=6))
    view_text = draw(st.sampled_from(VIEWS))
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.sampled_from(["R", "S", "T"]),
                ROWS,
            ),
            max_size=12,
        )
    )
    return initial_r, initial_s, initial_t, view_text, operations


def build_space(initial_r, initial_s, initial_t):
    space = InformationSpace()
    for source, schema, rows in [
        ("IS1", Schema("R", ["A", "B"]), initial_r),
        ("IS2", Schema("S", ["A", "C"]), initial_s),
        ("IS3", Schema("T", ["D", "E"]), initial_t),
    ]:
        space.add_source(source)
        space.register_relation(
            source,
            Relation(schema, rows),
            RelationStatistics(cardinality=max(len(rows), 1)),
        )
    return space


def factors(counters):
    return (
        counters.messages,
        counters.bytes_transferred,
        counters.io_operations,
    )


def replay(space, view, operations):
    """Valid updates only, applied lazily (sequential protocol)."""
    for kind, relation_name, row in operations:
        if relation_name not in view.relation_names:
            continue
        source = space.owner_of(relation_name)
        if kind == "delete":
            if row not in source.relation(relation_name).rows:
                continue
            yield source.delete(relation_name, row)
        else:
            yield source.insert(relation_name, row)


# ----------------------------------------------------------------------
# Evaluation parity
# ----------------------------------------------------------------------
@given(storm())
@settings(max_examples=100, deadline=None)
def test_columnar_engine_matches_row_engines(data):
    initial_r, initial_s, initial_t, view_text, _ = data
    view = parse_view(view_text)
    space = build_space(initial_r, initial_s, initial_t)
    reference = evaluate_view(
        view, space.relations(), config=EngineConfig(engine="naive")
    )
    for use_index in (True, False):
        tuple_extent = evaluate_view(
            view,
            space.relations(),
            config=EngineConfig(use_index=use_index),
        )
        counters = KernelCounters()
        columnar_extent = evaluate_view(
            view,
            space.relations(),
            config=EngineConfig(
                representation="columnar", use_index=use_index
            ),
            kernel_counters=counters,
        )
        # Columnar must match the tuple plane in exact row order (same
        # greedy join order, same candidate sequence); the naive engine
        # joins in literal order, so against it the contract is bag
        # equality.
        assert columnar_extent.rows == tuple_extent.rows, use_index
        assert sorted(columnar_extent.rows) == sorted(reference.rows), use_index
        assert columnar_extent.schema == reference.schema
        assert counters.rows_scanned >= 0 and counters.rows_selected >= 0
    # The guard-railed optimizer pass (ISSUE 8) is plan-shape-only:
    # with optimize=True both representations still produce the indexed
    # plane's exact row sequence.
    indexed = evaluate_view(view, space.relations(), config=EngineConfig())
    optimized = evaluate_view(
        view, space.relations(), config=EngineConfig(optimize=True)
    )
    optimized_columnar = evaluate_view(
        view,
        space.relations(),
        config=EngineConfig(optimize=True, representation="columnar"),
    )
    assert optimized.rows == indexed.rows
    assert optimized_columnar.rows == indexed.rows


# ----------------------------------------------------------------------
# Delta-plane parity
# ----------------------------------------------------------------------
@given(storm())
@settings(max_examples=100, deadline=None)
def test_columnar_plane_matches_row_planes_per_update(data):
    initial_r, initial_s, initial_t, view_text, operations = data
    view = parse_view(view_text)
    lanes = {}
    for representation, use_index in [
        ("dict", False),
        ("tuple", True),
        ("columnar", True),
        ("columnar", False),
    ]:
        space = build_space(initial_r, initial_s, initial_t)
        extent = evaluate_view(view, space.relations())
        maintainer = ViewMaintainer(
            space,
            config=MaintenanceConfig(
                representation=representation, use_index=use_index
            ),
        )
        for update in replay(space, view, operations):
            maintainer.maintain(view, extent, update)
        lanes[(representation, use_index)] = (extent, maintainer.counters)

    reference_extent, reference_counters = lanes[("dict", False)]
    for key, (extent, counters) in lanes.items():
        assert extent.rows == reference_extent.rows, key
        assert factors(counters) == factors(reference_counters), key


@given(storm())
@settings(max_examples=60, deadline=None)
def test_columnar_maintain_batch_matches_per_update_reference(data):
    initial_r, initial_s, initial_t, view_text, operations = data
    view = parse_view(view_text)
    # Single-relation streams batch safely end to end (maintain_batch's
    # equivalence contract); restrict the storm accordingly.
    operations = [op for op in operations if op[1] == "R"]

    reference_space = build_space(initial_r, initial_s, initial_t)
    reference_extent = evaluate_view(view, reference_space.relations())
    reference = ViewMaintainer(
        reference_space, config=MaintenanceConfig(representation="dict")
    )
    for update in replay(reference_space, view, operations):
        reference.maintain(view, reference_extent, update)

    space = build_space(initial_r, initial_s, initial_t)
    extent = evaluate_view(view, space.relations())
    maintainer = ViewMaintainer(
        space, config=MaintenanceConfig(representation="columnar")
    )
    updates = replay(space, view, operations)
    returned = maintainer.maintain_batch(view, extent, updates)

    assert extent.rows == reference_extent.rows
    assert factors(maintainer.counters) == factors(reference.counters)
    assert factors(returned) == factors(reference.counters)


@given(storm())
@settings(max_examples=60, deadline=None)
def test_single_site_columnar_rows_identical(data):
    """Source-level parity: the joined delta *rows themselves* agree."""
    initial_r, initial_s, initial_t, view_text, operations = data
    view = parse_view(view_text)
    if len(view.relation_names) < 2:
        return
    space = build_space(initial_r, initial_s, initial_t)
    condition = view.condition()
    r_schema = space.relation("R").schema
    seeds = [
        row for kind, name, row in operations if name == "R" and kind == "insert"
    ]
    local = [name for name in view.relation_names if name != "R"]

    for name in local:
        source = space.owner_of(name)
        for use_index in (True, False):
            row_batch = source.answer_single_site_batch(
                DeltaBatch.seed("R", r_schema, seeds, list(range(len(seeds)))),
                [name],
                condition,
                use_index=use_index,
            )
            column_batch = source.answer_single_site_columnar(
                ColumnBatch.seed("R", r_schema, seeds, list(range(len(seeds)))),
                [name],
                condition,
                use_index=use_index,
            )
            assert column_batch.columns == row_batch.columns, (name, use_index)
            assert column_batch.rows == row_batch.rows, (name, use_index)
            assert column_batch.tags == row_batch.tags, (name, use_index)


# ----------------------------------------------------------------------
# Full-system parity through flush boundaries
# ----------------------------------------------------------------------
@given(storm())
@settings(max_examples=40, deadline=None)
def test_columnar_apply_updates_matches_sequential_system(data):
    """EVESystem.apply_updates on the columnar profile equals the
    per-update dict-plane listener path — including interleaved
    multi-relation streams whose flush boundaries restore the
    sequential protocol."""
    initial_r, initial_s, initial_t, view_text, operations = data
    views = [view_text, VIEWS[0]]

    def build(config=None):
        eve = EVESystem(
            space=build_space(initial_r, initial_s, initial_t),
            auto_synchronize=False,
            config=config,
        )
        for index, text in enumerate(views):
            eve.define_view(text.replace("VIEW V ", f"VIEW V{index} "))
        return eve

    reference = build(
        SystemConfig(
            maintenance=MaintenanceConfig(
                representation="dict", use_index=False
            )
        )
    )
    intents = []
    for kind, relation_name, row in operations:
        source = reference.space.owner_of(relation_name)
        if kind == "delete" and row not in source.relation(relation_name).rows:
            continue
        intents.append((relation_name, kind, row))
        if kind == "insert":
            reference.space.insert(relation_name, row)
        else:
            reference.space.delete(relation_name, row)

    eve = build(SystemConfig.columnar())
    eve.apply_updates(intents)
    for index in range(len(views)):
        name = f"V{index}"
        assert eve.extent(name).rows == reference.extent(name).rows
    assert factors(eve.maintainer.counters) == factors(
        reference.maintainer.counters
    )
    report = eve.last_report.to_dict()
    kernels = report["maintenance"]["kernels"]
    assert set(kernels) == {"rows_scanned", "rows_selected"}
