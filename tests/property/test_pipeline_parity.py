"""Policy parity: pruned and top_k commit the exhaustive winner.

Randomized spaces (varying donor cardinalities, constraint directions,
evolution flags, and change kinds) drive the streaming pipeline under
every search policy.  ``pruned`` and ``top_k`` must pick the identical
winning rewriting — with the identical QC-Value, float for float — as
``exhaustive``, which itself must match the eager reference path.  The
dominated spectrum must never be materialized unless requested.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.esql.ast import FromItem, SelectItem, ViewDefinition, WhereItem
from repro.esql.params import EvolutionFlags, ViewExtent
from repro.misd.constraints import (
    PCConstraint,
    PCRelationship,
    RelationFragment,
)
from repro.misd.statistics import RelationStatistics
from repro.qc.model import QCModel
from repro.relational.expressions import (
    AttributeRef,
    Comparator,
    Constant,
    PrimitiveClause,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import DeleteAttribute, DeleteRelation
from repro.space.space import InformationSpace
from repro.sync.legality import check_legality
from repro.sync.pipeline import RewritingSearchPipeline
from repro.sync.synchronizer import ViewSynchronizer

flags = st.builds(EvolutionFlags, st.booleans(), st.booleans())
extents = st.sampled_from(
    [ViewExtent.ANY, ViewExtent.SUPERSET, ViewExtent.SUBSET]
)
pc_relationships = st.sampled_from(list(PCRelationship))

ATTRS = ["A", "B", "C"]
DONORS = ("S", "T", "U")


@st.composite
def scenario(draw):
    """A space with three potential donors, a random view, and a change."""
    space = InformationSpace()
    space.add_source("IS1")
    space.register_relation(
        "IS1",
        Relation(Schema("R", ATTRS)),
        RelationStatistics(cardinality=draw(st.integers(100, 5000))),
    )
    for index, donor in enumerate(DONORS):
        source = f"IS{index + 2}"
        space.add_source(source)
        space.register_relation(
            source,
            Relation(Schema(donor, ATTRS)),
            RelationStatistics(cardinality=draw(st.integers(100, 5000))),
        )
        if draw(st.booleans()):
            subset = draw(
                st.lists(
                    st.sampled_from(ATTRS),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
            space.mkb.add_pc_constraint(
                PCConstraint(
                    RelationFragment("R", tuple(subset)),
                    RelationFragment(donor, tuple(subset)),
                    draw(pc_relationships),
                )
            )

    n_select = draw(st.integers(1, 3))
    chosen = draw(
        st.lists(
            st.sampled_from(ATTRS),
            min_size=n_select,
            max_size=n_select,
            unique=True,
        )
    )
    select = [
        SelectItem(AttributeRef(attr, "R"), draw(flags)) for attr in chosen
    ]
    where = []
    if draw(st.booleans()):
        where.append(
            WhereItem(
                PrimitiveClause(
                    AttributeRef(draw(st.sampled_from(ATTRS)), "R"),
                    Comparator.GT,
                    Constant(draw(st.integers(0, 9))),
                ),
                draw(flags),
            )
        )
    view = ViewDefinition(
        "V", select, [FromItem("R", draw(flags))], where, draw(extents)
    )
    if draw(st.booleans()):
        change = DeleteRelation("IS1", "R")
        space.delete_relation("R")
    else:
        attribute = draw(st.sampled_from(ATTRS))
        change = DeleteAttribute("IS1", "R", attribute)
        space.delete_attribute("R", attribute)
    return space, view, change


def _pipeline(space):
    return RewritingSearchPipeline(
        ViewSynchronizer(space.mkb), QCModel(space.mkb)
    )


@given(scenario(), st.booleans())
@settings(max_examples=120, deadline=None)
def test_pruned_and_top_k_match_exhaustive(data, include_dominated):
    space, view, change = data
    pipeline = _pipeline(space)
    exhaustive = pipeline.search(
        view, change, include_dominated=include_dominated, policy="exhaustive"
    )
    for policy in ("pruned", "top_k(1)", "top_k(3)"):
        result = pipeline.search(
            view, change, include_dominated=include_dominated, policy=policy
        )
        assert result.survived == exhaustive.survived
        if exhaustive.survived:
            assert (
                result.chosen.rewriting == exhaustive.chosen.rewriting
            ), policy
            assert result.chosen.qc == exhaustive.chosen.qc, policy
            assert (
                result.chosen.normalized_cost
                == exhaustive.chosen.normalized_cost
            ), policy


@given(scenario())
@settings(max_examples=60, deadline=None)
def test_explain_is_purely_annotative(data):
    """``explain=True`` (ISSUE 8) never changes the search outcome.

    The pre-assessment EXPLAIN of the winner is a statistics-only plan
    annotation: survival, the chosen rewriting, and its QC value are
    byte-identical with and without it; the plan dict only appears when
    requested and a winner survived.
    """
    space, view, change = data
    plain = _pipeline(space).search(view, change)
    explained = RewritingSearchPipeline(
        ViewSynchronizer(space.mkb), QCModel(space.mkb), explain=True
    ).search(view, change)
    assert explained.survived == plain.survived
    assert plain.plan is None
    if plain.survived:
        assert explained.chosen.rewriting == plain.chosen.rewriting
        assert explained.chosen.qc == plain.chosen.qc
        assert explained.plan is not None
        assert explained.plan["kind"] == "evaluation"
    else:
        assert explained.plan is None


@given(scenario())
@settings(max_examples=100, deadline=None)
def test_exhaustive_matches_eager_reference(data):
    space, view, change = data
    synchronizer = ViewSynchronizer(space.mkb)
    model = QCModel(space.mkb)
    pipeline = RewritingSearchPipeline(synchronizer, model)
    eager = [
        rewriting
        for rewriting in synchronizer.synchronize(view, change)
        if check_legality(rewriting).legal
    ]
    result = pipeline.search(view, change, policy="exhaustive")
    assert [e.rewriting for e in result.evaluations] == [
        e.rewriting for e in (model.evaluate(eager) if eager else [])
    ]
    if eager:
        reference = model.evaluate(eager)
        assert [e.qc for e in result.evaluations] == [
            e.qc for e in reference
        ]


@given(scenario())
@settings(max_examples=100, deadline=None)
def test_dominated_spectrum_not_materialized_by_default(data):
    space, view, change = data
    pipeline = _pipeline(space)
    for policy in ("exhaustive", "pruned", "first_legal"):
        result = pipeline.search(view, change, policy=policy)
        assert result.counters.dominated == 0


@given(scenario())
@settings(max_examples=100, deadline=None)
def test_counters_account_for_every_candidate(data):
    space, view, change = data
    pipeline = _pipeline(space)
    counters = pipeline.search(view, change, include_dominated=True).counters
    assert (
        counters.generated + counters.dominated
        == counters.ve_rejected
        + counters.duplicates
        + counters.illegal
        + counters.legal
    )
    assert counters.assessed + counters.pruned == counters.legal
