"""Property tests: the tuple delta plane equals the binding plane.

The delta plane's contract (ISSUE 4): for any update storm, the
positional-tuple representation produces *identical delta rows, extents,
and byte-identical modeled CF_M/CF_T/CF_IO counters* to the dict-binding
reference — per update, and through ``maintain_batch``.  The dict path
stays selectable (``representation="dict"``) precisely so these tests
can keep pinning it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MaintenanceConfig
from repro.core.eve import EVESystem
from repro.esql.evaluator import evaluate_view
from repro.esql.parser import parse_view
from repro.maintenance.delta import DeltaBatch
from repro.maintenance.simulator import ViewMaintainer
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.space import InformationSpace

VALUES = st.integers(0, 6)
ROWS = st.tuples(VALUES, VALUES)

#: Single-site (one relation, one IS) and multi-site (two/three IS)
#: shapes; selections, equijoins, theta clauses, and a clause that is
#: undecidable until the second hop.
VIEWS = [
    "CREATE VIEW V AS SELECT R.A, R.B FROM R",
    "CREATE VIEW V AS SELECT R.A FROM R WHERE R.B > 2",
    "CREATE VIEW V AS SELECT R.A, S.C FROM R, S WHERE R.A = S.A",
    (
        "CREATE VIEW V AS SELECT R.B, S.C FROM R, S "
        "WHERE R.A = S.A AND S.C < 4"
    ),
    (
        "CREATE VIEW V AS SELECT R.A, S.C, T.D FROM R, S, T "
        "WHERE R.A = S.A AND S.C = T.D AND R.B <= T.D"
    ),
    # No equijoin link into S: exercises the cross-join (no-probe) step.
    "CREATE VIEW V AS SELECT R.A, S.C FROM R, S WHERE S.C > 1 AND R.B < 5",
]


@st.composite
def storm(draw):
    initial_r = draw(st.lists(ROWS, max_size=8))
    initial_s = draw(st.lists(ROWS, max_size=8))
    initial_t = draw(st.lists(ROWS, max_size=6))
    view_text = draw(st.sampled_from(VIEWS))
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.sampled_from(["R", "S", "T"]),
                ROWS,
            ),
            max_size=12,
        )
    )
    return initial_r, initial_s, initial_t, view_text, operations


def build_space(initial_r, initial_s, initial_t):
    space = InformationSpace()
    for source, schema, rows in [
        ("IS1", Schema("R", ["A", "B"]), initial_r),
        ("IS2", Schema("S", ["A", "C"]), initial_s),
        ("IS3", Schema("T", ["D", "E"]), initial_t),
    ]:
        space.add_source(source)
        space.register_relation(
            source,
            Relation(schema, rows),
            RelationStatistics(cardinality=max(len(rows), 1)),
        )
    return space


def factors(counters):
    return (
        counters.messages,
        counters.bytes_transferred,
        counters.io_operations,
    )


def replay(space, view, operations):
    """Filter the op stream to valid updates, applying them lazily.

    A generator, so ``for update in replay(...): maintain(update)``
    follows the sequential protocol exactly: each update lands on its
    source immediately before its own maintenance, never earlier.
    (Materializing the list first would apply *future* updates before
    maintaining the current one — not a state any sequential execution
    can produce, so maintenance is not required to survive it.)
    """
    for kind, relation_name, row in operations:
        if relation_name not in view.relation_names:
            continue
        source = space.owner_of(relation_name)
        if kind == "delete":
            if row not in source.relation(relation_name).rows:
                continue
            yield source.delete(relation_name, row)
        else:
            yield source.insert(relation_name, row)


@given(storm())
@settings(max_examples=100, deadline=None)
def test_tuple_plane_matches_dict_plane_per_update(data):
    initial_r, initial_s, initial_t, view_text, operations = data
    view = parse_view(view_text)
    lanes = {}
    for representation, use_index in [
        ("dict", False),
        ("dict", True),
        ("tuple", True),
        ("tuple", False),
    ]:
        space = build_space(initial_r, initial_s, initial_t)
        extent = evaluate_view(view, space.relations())
        maintainer = ViewMaintainer(
            space,
            config=MaintenanceConfig(
                representation=representation, use_index=use_index
            ),
        )
        for update in replay(space, view, operations):
            maintainer.maintain(view, extent, update)
        lanes[(representation, use_index)] = (extent, maintainer.counters)

    reference_extent, reference_counters = lanes[("dict", False)]
    for key, (extent, counters) in lanes.items():
        # Same rows in the same order, not just bag equality: both
        # planes must accept candidates in the identical sequence.
        assert extent.rows == reference_extent.rows, key
        assert factors(counters) == factors(reference_counters), key


@given(storm())
@settings(max_examples=60, deadline=None)
def test_maintain_batch_matches_per_update_reference(data):
    initial_r, initial_s, initial_t, view_text, operations = data
    view = parse_view(view_text)
    # Restrict the storm to one relation: maintain_batch's equivalence
    # contract (an update's own relation is never joined, so any
    # single-relation stream batches safely end to end).
    operations = [op for op in operations if op[1] == "R"]

    reference_space = build_space(initial_r, initial_s, initial_t)
    reference_extent = evaluate_view(view, reference_space.relations())
    reference = ViewMaintainer(
        reference_space, config=MaintenanceConfig(representation="dict")
    )
    for update in replay(reference_space, view, operations):
        reference.maintain(view, reference_extent, update)

    space = build_space(initial_r, initial_s, initial_t)
    extent = evaluate_view(view, space.relations())
    maintainer = ViewMaintainer(space)
    updates = replay(space, view, operations)
    returned = maintainer.maintain_batch(view, extent, updates)

    assert extent.rows == reference_extent.rows
    assert factors(maintainer.counters) == factors(reference.counters)
    assert factors(returned) == factors(reference.counters)


@given(storm())
@settings(max_examples=60, deadline=None)
def test_single_site_query_rows_identical(data):
    """Source-level parity: the joined delta *rows themselves* agree."""
    initial_r, initial_s, initial_t, view_text, operations = data
    view = parse_view(view_text)
    if len(view.relation_names) < 2:
        return
    space = build_space(initial_r, initial_s, initial_t)
    condition = view.condition()
    r_schema = space.relation("R").schema
    seeds = [
        row for kind, name, row in operations if name == "R" and kind == "insert"
    ]
    columns = tuple(f"R.{attr}" for attr in r_schema.attribute_names)
    local = [name for name in view.relation_names if name != "R"]

    for name in local:
        source = space.owner_of(name)
        bindings = [dict(zip(columns, row)) for row in seeds]
        for use_index in (True, False):
            dict_result = source.answer_single_site_query(
                bindings, [name], condition, use_index=use_index
            )
            batch = source.answer_single_site_batch(
                DeltaBatch(columns, list(seeds), list(range(len(seeds)))),
                [name],
                condition,
                use_index=use_index,
            )
            dict_rows = [
                tuple(binding[column] for column in batch.columns)
                for binding in dict_result
            ]
            assert batch.rows == dict_rows, (name, use_index)
            assert len(batch.tags) == len(batch.rows)


@given(storm())
@settings(max_examples=40, deadline=None)
def test_apply_updates_matches_sequential_system(data):
    """EVESystem.apply_updates on an interleaved multi-relation stream
    equals the per-update listener path — flush boundaries restore the
    sequential protocol exactly where batching would break it."""
    initial_r, initial_s, initial_t, view_text, operations = data
    views = [view_text, VIEWS[0]]

    def build(system_cls=EVESystem):
        eve = system_cls(
            space=build_space(initial_r, initial_s, initial_t),
            auto_synchronize=False,
        )
        for index, text in enumerate(views):
            eve.define_view(text.replace("VIEW V ", f"VIEW V{index} "))
        return eve

    reference = build()
    intents = []
    for kind, relation_name, row in operations:
        source = reference.space.owner_of(relation_name)
        if kind == "delete" and row not in source.relation(relation_name).rows:
            continue
        intents.append((relation_name, kind, row))
        if kind == "insert":
            reference.space.insert(relation_name, row)
        else:
            reference.space.delete(relation_name, row)

    eve = build()
    eve.apply_updates(intents)
    for index in range(len(views)):
        name = f"V{index}"
        assert eve.extent(name).rows == reference.extent(name).rows
        recomputed = evaluate_view(
            eve.vkb.current(name), eve.space.relations()
        )
        assert sorted(eve.extent(name).rows) == sorted(recomputed.rows)
    assert factors(eve.maintainer.counters) == factors(
        reference.maintainer.counters
    )
