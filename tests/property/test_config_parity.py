"""Preset parity: configuration spelling never changes outcomes.

The acceptance property of the config redesign (ISSUE 5): every
:class:`~repro.config.SystemConfig` preset must produce byte-identical
committed winners, QC-Values, extents, and modeled CF_M/CF_T/CF_IO
counters to the default spelling of the same planes.  The presets
deliberately span every plane pair the property tests already pin
(naive/indexed engines, dict/tuple delta representations,
serial/threaded/coalesced schedulers, exhaustive/pruned policies), so
this test is the composition of those parities through the one public
entry point.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core.eve import EVESystem
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import DeleteRelation
from repro.space.space import InformationSpace

ROWS = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)),
    min_size=1,
    max_size=5,
)


@st.composite
def scenario(draw):
    relations = draw(st.integers(min_value=2, max_value=4))
    tables = [draw(ROWS) for _ in range(relations)]
    updates = draw(
        st.lists(
            st.tuples(
                st.integers(0, relations - 1),
                st.sampled_from(["insert", "delete"]),
                st.tuples(st.integers(0, 5), st.integers(0, 5)),
            ),
            max_size=8,
        )
    )
    deleted = draw(st.integers(min_value=1, max_value=relations))
    return tables, updates, deleted


def build_eve(tables, **kwargs):
    """R_i with an equivalent mirror M_i each, one replaceable view per R_i."""
    space = InformationSpace()
    space.add_source("IS1")
    space.add_source("IS2")
    for index, rows in enumerate(tables):
        space.register_relation(
            "IS1",
            Relation(Schema(f"R{index}", ["A", "B"]), rows),
            RelationStatistics(cardinality=max(len(rows), 1)),
        )
        space.register_relation(
            "IS2",
            Relation(Schema(f"M{index}", ["A", "B"]), list(rows)),
            RelationStatistics(cardinality=max(len(rows), 1)),
        )
        space.mkb.add_equivalence(f"R{index}", f"M{index}", ["A", "B"])
    eve = EVESystem(space=space, **kwargs)
    for index in range(len(tables)):
        eve.define_view(
            f"CREATE VIEW V{index} (VE = '~') AS "
            f"SELECT R{index}.A (AR = true), "
            f"R{index}.B (AD = true, AR = true) "
            f"FROM R{index} (RR = true)"
        )
    return eve


def run(tables, updates, deleted, **kwargs):
    """Update storm then capability-change batch; full fingerprint."""
    eve = build_eve(tables, **kwargs)
    stream = []
    for index, kind, row in updates:
        for prefix in ("R", "M"):  # mirrors stay equivalent, like the ISs
            name = f"{prefix}{index}"
            if kind == "delete" and row not in eve.space.relation(name).rows:
                continue
            stream.append((name, kind, row))
    maintenance = eve.apply_updates(stream)
    results = eve.apply_changes(
        [DeleteRelation("IS1", f"R{index}") for index in range(deleted)]
    )
    return (
        [
            (record.name, record.alive, record.generations, record.current)
            for record in eve.vkb
        ],
        [
            (result.view_name, result.chosen.qc if result.chosen else None)
            for result in results
        ],
        {
            f"V{index}": eve.extent(f"V{index}")
            for index in range(len(tables))
            if eve.is_alive(f"V{index}")
        },
        (
            maintenance.messages,
            maintenance.bytes_transferred,
            maintenance.io_operations,
        ),
    )


def assert_same(reference, candidate, label):
    ref_vkb, ref_results, ref_extents, ref_counters = reference
    vkb, results, extents, counters = candidate
    assert vkb == ref_vkb, label
    assert results == ref_results, label  # winners + exact QC floats
    assert counters == ref_counters, label  # byte-identical CF counters
    assert set(extents) == set(ref_extents), label
    for name, extent in extents.items():
        # Relation equality is multiset row equality over the schema.
        assert extent == ref_extents[name], (label, name)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenario())
def test_presets_commit_identical_outcomes(data):
    tables, updates, deleted = data
    reference = run(tables, updates, deleted)  # the default profile
    for label, config in {
        "reference": SystemConfig.reference(),
        "fast": SystemConfig.fast(),
        "columnar": SystemConfig.columnar(),
        "bounded-unbinding": SystemConfig.bounded(budget_units=1e12),
    }.items():
        assert_same(
            reference, run(tables, updates, deleted, config=config), label
        )
