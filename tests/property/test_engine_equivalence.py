"""Engine equivalence: indexed/compiled paths == naive nested-loop paths.

The indexed execution engine (hash probes, compiled predicates, greedy
join order) must be a pure performance change: on every randomized
relation instance, join condition, and insert/delete sequence it has to
produce row-identical (bag-equal) results to the interpreted nested-loop
reference — and incrementally maintained indexes must always agree with a
freshly built scan.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EngineConfig, MaintenanceConfig
from repro.esql.evaluator import evaluate_view
from repro.esql.parser import parse_condition_clause, parse_view
from repro.relational.algebra import join, select
from repro.relational.expressions import Condition
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.source import InformationSource
from repro.maintenance.simulator import ViewMaintainer
from repro.misd.statistics import RelationStatistics
from repro.space.space import InformationSpace

values = st.integers(0, 5)
r_rows = st.lists(st.tuples(values, values), max_size=25)
s_rows = st.lists(st.tuples(values, values), max_size=25)
t_rows = st.lists(st.tuples(values, values), max_size=15)

#: WHERE-clause pool: equijoins, selections, a non-equijoin, and a
#: same-relation clause — every shape the clause scheduler handles.
CLAUSE_POOL = (
    "R.A = S.A",
    "R.B = T.B",
    "S.C = T.D",
    "R.A > 2",
    "S.C <> 3",
    "T.D <= 4",
    "R.A < S.C",
    "R.A = R.B",
)

clause_subsets = st.sets(
    st.sampled_from(CLAUSE_POOL), max_size=4
).map(sorted)
from_orders = st.permutations(["R", "S", "T"])


def make_relations(r_data, s_data, t_data):
    return {
        "R": Relation(Schema("R", ["A", "B"]), r_data),
        "S": Relation(Schema("S", ["A", "C"]), s_data),
        "T": Relation(Schema("T", ["B", "D"]), t_data),
    }


@given(r_rows, s_rows, t_rows, clause_subsets, from_orders)
@settings(max_examples=80, deadline=None)
def test_indexed_evaluator_matches_naive(r_data, s_data, t_data, clauses, order):
    relations = make_relations(r_data, s_data, t_data)
    where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
    view = parse_view(
        "CREATE VIEW V AS SELECT R.A, R.B, S.C, T.D "
        f"FROM {', '.join(order)}{where}"
    )
    indexed = evaluate_view(view, relations, config=EngineConfig(engine="indexed"))
    naive = evaluate_view(view, relations, config=EngineConfig(engine="naive"))
    assert indexed == naive  # bag equality over identical schemas


@given(r_rows, s_rows, t_rows, clause_subsets, from_orders)
@settings(max_examples=80, deadline=None)
def test_optimized_evaluator_matches_naive(
    r_data, s_data, t_data, clauses, order
):
    """optimize=True (ISSUE 8) is plan-shape-only: extents identical.

    Only R feeds the SELECT list, so whichever of S/T the greedy order
    places last is a semi-join candidate; local clauses on probed
    relations are pushdown candidates.  Whatever the guards decide, the
    result must stay bag-identical to the naive reference on both the
    tuple and the columnar representation.
    """
    relations = make_relations(r_data, s_data, t_data)
    where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
    view = parse_view(
        "CREATE VIEW V AS SELECT R.A, R.B "
        f"FROM {', '.join(order)}{where}"
    )
    naive = evaluate_view(view, relations, config=EngineConfig(engine="naive"))
    optimized = evaluate_view(
        view, relations, config=EngineConfig(optimize=True)
    )
    assert optimized == naive  # bag equality over identical schemas
    columnar = evaluate_view(
        view,
        relations,
        config=EngineConfig(optimize=True, representation="columnar"),
    )
    assert sorted(columnar.rows) == sorted(naive.rows)


@given(r_rows, s_rows, clause_subsets)
@settings(max_examples=60, deadline=None)
def test_two_relation_views_agree(r_data, s_data, clauses):
    relations = make_relations(r_data, s_data, [])
    usable = [c for c in clauses if "T." not in c]
    where = (" WHERE " + " AND ".join(usable)) if usable else ""
    view = parse_view(
        f"CREATE VIEW V AS SELECT R.B, S.C FROM S, R{where}"
    )
    indexed = evaluate_view(view, relations, config=EngineConfig(engine="indexed"))
    naive = evaluate_view(view, relations, config=EngineConfig(engine="naive"))
    assert indexed == naive


@given(
    r_rows,
    s_rows,
    st.sets(
        st.sampled_from(["R.A = S.A", "R.B = S.C", "R.A < S.C", "R.B > 1"]),
        min_size=1,
        max_size=3,
    ).map(sorted),
)
@settings(max_examples=60, deadline=None)
def test_algebra_join_indexed_matches_nested_loop(r_data, s_data, clauses):
    left = Relation(Schema("R", ["A", "B"]), r_data)
    right = Relation(Schema("S", ["A", "C"]), s_data)
    condition = Condition(parse_condition_clause(c) for c in clauses)
    fast = join(left, right, condition, use_index=True)
    slow = join(left, right, condition, use_index=False)
    assert fast == slow


@given(r_rows, st.sampled_from(["A > 2", "R.A = R.B", "B <> 4"]))
@settings(max_examples=40, deadline=None)
def test_algebra_select_compiled_matches_interpreted(r_data, clause_text):
    relation = Relation(Schema("R", ["A", "B"]), r_data)
    condition = Condition.of(parse_condition_clause(clause_text))
    assert select(relation, condition, compiled=True) == select(
        relation, condition, compiled=False
    )


# ----------------------------------------------------------------------
# Index maintenance under insert/delete sequences
# ----------------------------------------------------------------------
@given(
    r_rows,
    st.lists(
        st.tuples(st.booleans(), st.tuples(values, values)), max_size=30
    ),
    st.integers(0, 30),
)
@settings(max_examples=80, deadline=None)
def test_incremental_index_matches_rebuilt_scan(initial, ops, build_at):
    relation = Relation(Schema("R", ["A", "B"]), initial)
    for step, (is_insert, row) in enumerate(ops):
        if step == build_at:
            relation.index_on(["A"])  # lazy build mid-sequence
        if is_insert:
            relation.insert(row)
        else:
            relation.delete(row)  # may be a no-op miss; must not corrupt
    index = relation.index_on(["A"])
    for key in {r[0] for r in relation} | {0, 5}:
        probed = Counter(index.probe((key,)))
        scanned = Counter(r for r in relation if r[0] == key)
        assert probed == scanned
    assert len(index) == relation.cardinality


@given(r_rows, st.lists(st.tuples(values, values), max_size=20))
@settings(max_examples=60, deadline=None)
def test_composite_index_survives_mutation(initial, inserts):
    relation = Relation(Schema("R", ["A", "B"]), initial)
    index = relation.index_on(["A", "B"])
    for row in inserts:
        relation.insert(row)
    for row in list(relation)[::2]:
        relation.delete(row)
    for row in set(relation.rows):
        assert Counter(index.probe(row)) == Counter(
            r for r in relation if r == row
        )


# ----------------------------------------------------------------------
# Single-site queries and full maintenance propagation
# ----------------------------------------------------------------------
binding_lists = st.lists(
    st.fixed_dictionaries({"X.A": values, "X.B": values}), max_size=10
)


@given(
    binding_lists,
    r_rows,
    s_rows,
    st.sets(
        st.sampled_from(
            [
                "X.A = R.A",
                "R.A = S.A",
                "X.B = S.C",
                "R.B > 2",
                "S.C <> 1",
                "X.A < R.B",
                "R.A = Elsewhere.A",
            ]
        ),
        max_size=4,
    ).map(sorted),
)
@settings(max_examples=80, deadline=None)
def test_single_site_query_indexed_matches_naive(
    bindings, r_data, s_data, clauses
):
    source = InformationSource("IS1")
    source.host(Relation(Schema("R", ["A", "B"]), r_data))
    source.host(Relation(Schema("S", ["A", "C"]), s_data))
    condition = Condition(parse_condition_clause(c) for c in clauses)
    fast = source.answer_single_site_query(
        [dict(b) for b in bindings], ["R", "S"], condition, use_index=True
    )
    slow = source.answer_single_site_query(
        [dict(b) for b in bindings], ["R", "S"], condition, use_index=False
    )
    as_multiset = lambda result: Counter(  # noqa: E731
        frozenset(binding.items()) for binding in result
    )
    assert as_multiset(fast) == as_multiset(slow)


def _build_space(r_data, s_data):
    space = InformationSpace()
    space.add_source("IS1")
    space.add_source("IS2")
    space.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B"]), r_data),
        RelationStatistics(cardinality=max(len(r_data), 1), tuple_size=8),
    )
    space.register_relation(
        "IS2",
        Relation(Schema("S", ["A", "C"]), s_data),
        RelationStatistics(cardinality=max(len(s_data), 1), tuple_size=8),
    )
    return space


@given(
    r_rows,
    s_rows,
    st.lists(
        st.tuples(
            st.sampled_from(["R", "S"]), st.tuples(values, values)
        ),
        max_size=12,
    ),
)
@settings(max_examples=50, deadline=None)
def test_maintenance_propagation_indexed_matches_naive(
    r_data, s_data, inserts
):
    view = parse_view(
        "CREATE VIEW V AS SELECT R.A, R.B, S.C FROM R, S WHERE R.A = S.A"
    )
    results = []
    for use_index in (True, False):
        space = _build_space(list(r_data), list(s_data))
        extent = evaluate_view(view, space.relations())
        maintainer = ViewMaintainer(
            space, config=MaintenanceConfig(use_index=use_index)
        )
        for relation_name, row in inserts:
            update = space.source(
                "IS1" if relation_name == "R" else "IS2"
            ).insert(relation_name, row)
            maintainer.maintain(view, extent, update)
        # Delete half of the original rows back out through the maintainer.
        for row in list(r_data)[::2]:
            update = space.source("IS1").delete("R", row)
            maintainer.maintain(view, extent, update)
        results.append((extent, maintainer.counters))
    (fast_extent, fast_counters), (slow_extent, slow_counters) = results
    assert fast_extent == slow_extent
    # The modeled cost counters must be byte-identical: the index changes
    # execution speed, never the modeled costs.
    assert fast_counters.messages == slow_counters.messages
    assert fast_counters.bytes_transferred == slow_counters.bytes_transferred
    assert fast_counters.io_operations == slow_counters.io_operations
