"""Property-based tests: every synchronizer output is legal and well-formed."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.esql.ast import FromItem, SelectItem, ViewDefinition, WhereItem
from repro.esql.params import EvolutionFlags, ViewExtent
from repro.misd.constraints import PCRelationship
from repro.relational.expressions import (
    AttributeRef,
    Comparator,
    Constant,
    PrimitiveClause,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import DeleteAttribute, DeleteRelation
from repro.space.space import InformationSpace
from repro.sync.legality import check_legality
from repro.sync.synchronizer import ViewSynchronizer

flags = st.builds(EvolutionFlags, st.booleans(), st.booleans())
extents = st.sampled_from([ViewExtent.ANY, ViewExtent.SUPERSET, ViewExtent.SUBSET])
pc_relationships = st.sampled_from(list(PCRelationship))

ATTRS = ["A", "B", "C"]


@st.composite
def scenario(draw):
    """A small space (R at IS1, donors S/T), a view over R, and a change."""
    space = InformationSpace()
    for source, name in [("IS1", "R"), ("IS2", "S"), ("IS3", "T")]:
        space.add_source(source)
        space.register_relation(source, Relation(Schema(name, ATTRS)))
    # Random PC constraints R <-> S, R <-> T over random attribute subsets.
    for donor in ("S", "T"):
        if draw(st.booleans()):
            subset = draw(
                st.lists(st.sampled_from(ATTRS), min_size=1, max_size=3,
                         unique=True)
            )
            relationship = draw(pc_relationships)
            from repro.misd.constraints import (
                PCConstraint,
                RelationFragment,
            )
            space.mkb.add_pc_constraint(
                PCConstraint(
                    RelationFragment("R", tuple(subset)),
                    RelationFragment(donor, tuple(subset)),
                    relationship,
                )
            )

    n_select = draw(st.integers(1, 3))
    chosen = draw(
        st.lists(
            st.sampled_from(ATTRS), min_size=n_select, max_size=n_select,
            unique=True,
        )
    )
    select = [
        SelectItem(AttributeRef(attr, "R"), draw(flags)) for attr in chosen
    ]
    where = []
    if draw(st.booleans()):
        where.append(
            WhereItem(
                PrimitiveClause(
                    AttributeRef(draw(st.sampled_from(ATTRS)), "R"),
                    Comparator.GT,
                    Constant(draw(st.integers(0, 9))),
                ),
                draw(flags),
            )
        )
    view = ViewDefinition(
        "V",
        select,
        [FromItem("R", draw(flags))],
        where,
        draw(extents),
    )
    if draw(st.booleans()):
        change = DeleteRelation("IS1", "R")
        space.delete_relation("R")
    else:
        attribute = draw(st.sampled_from(ATTRS))
        change = DeleteAttribute("IS1", "R", attribute)
        space.delete_attribute("R", attribute)
    return space, view, change


@given(scenario())
@settings(max_examples=150, deadline=None)
def test_every_rewriting_is_legal(data):
    space, view, change = data
    synchronizer = ViewSynchronizer(space.mkb)
    for rewriting in synchronizer.synchronize(view, change):
        report = check_legality(rewriting)
        assert report.legal, (
            f"illegal rewriting {rewriting.describe()}: {report.violations}"
        )


@given(scenario())
@settings(max_examples=150, deadline=None)
def test_rewritings_never_reference_deleted_pieces(data):
    space, view, change = data
    synchronizer = ViewSynchronizer(space.mkb)
    for rewriting in synchronizer.synchronize(view, change):
        new_view = rewriting.view
        if isinstance(change, DeleteRelation):
            assert change.relation not in new_view.relation_names
        else:
            lost = AttributeRef(change.attribute, change.relation)
            assert all(item.ref != lost for item in new_view.select)
            for item in new_view.where:
                assert lost not in item.clause.attribute_refs


@given(scenario())
@settings(max_examples=150, deadline=None)
def test_rewritings_resolve_against_post_change_space(data):
    """Every rewriting must be executable on the surviving relations."""
    from repro.esql.validate import ViewValidator

    space, view, change = data
    synchronizer = ViewSynchronizer(space.mkb)
    for rewriting in synchronizer.synchronize(view, change):
        schemas = {}
        for name in rewriting.view.relation_names:
            assert space.has_relation(name), (
                f"{rewriting.describe()} references missing {name!r}"
            )
            schemas[name] = space.relation(name).schema
        ViewValidator(schemas).validate(rewriting.view)


@given(scenario())
@settings(max_examples=100, deadline=None)
def test_rewritings_are_unique(data):
    space, view, change = data
    synchronizer = ViewSynchronizer(space.mkb)
    rewritings = synchronizer.synchronize(view, change, include_dominated=True)
    views = [r.view for r in rewritings]
    assert len(views) == len(set(views))
