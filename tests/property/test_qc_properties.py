"""Property-based tests for QC-Model invariants."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.misd.statistics import SpaceStatistics
from repro.qc.cost import (
    MaintenancePlan,
    SourceGroup,
    cf_bytes,
    cf_io,
    cf_messages,
    cf_messages_counted,
    normalize_costs,
)
from repro.qc.params import TradeoffParameters
from repro.qc.quality import dd_ext, dd_ext_d1, dd_ext_d2
from repro.qc.view_size import ExtentNumbers

extent_numbers = st.builds(
    lambda original, rewriting, overlap_frac: ExtentNumbers(
        original,
        rewriting,
        overlap_frac * min(original, rewriting),
    ),
    st.floats(0, 10_000),
    st.floats(0, 10_000),
    st.floats(0, 1),
)

weights = st.floats(0, 1).map(
    lambda w: TradeoffParameters().with_extent_weights(w, 1 - w)
)


class TestQualityBounds:
    @given(extent_numbers)
    @settings(max_examples=100)
    def test_d1_d2_within_unit_interval(self, numbers):
        assert 0.0 <= dd_ext_d1(numbers) <= 1.0
        assert 0.0 <= dd_ext_d2(numbers) <= 1.0

    @given(extent_numbers, weights)
    @settings(max_examples=100)
    def test_dd_ext_within_unit_interval(self, numbers, params):
        assert 0.0 <= dd_ext(numbers, params) <= 1.0

    @given(st.floats(1, 10_000))
    @settings(max_examples=50)
    def test_identical_extents_have_zero_divergence(self, size):
        numbers = ExtentNumbers(size, size, size)
        assert dd_ext(numbers, TradeoffParameters()) == 0.0

    @given(st.floats(1, 10_000), st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=100)
    def test_d1_monotone_in_overlap(self, original, frac_low, frac_high):
        assume(frac_low <= frac_high)
        low = ExtentNumbers(original, original, frac_low * original)
        high = ExtentNumbers(original, original, frac_high * original)
        assert dd_ext_d1(low) >= dd_ext_d1(high)


class TestNormalization:
    @given(st.lists(st.floats(0, 1e9), min_size=1, max_size=20))
    @settings(max_examples=100)
    def test_normalized_costs_in_unit_interval(self, totals):
        normalized = normalize_costs(totals)
        assert all(0.0 <= value <= 1.0 for value in normalized)

    @given(st.lists(st.floats(0, 1e9), min_size=2, max_size=20))
    @settings(max_examples=100)
    def test_normalization_preserves_order(self, totals):
        normalized = normalize_costs(totals)
        for i in range(len(totals)):
            for j in range(len(totals)):
                if totals[i] < totals[j]:
                    assert normalized[i] <= normalized[j]

    @given(
        st.lists(st.floats(0, 1e6), min_size=2, max_size=10),
        st.floats(0.1, 10),
        st.floats(0, 100),
    )
    @settings(max_examples=100)
    def test_normalization_invariant_to_affine_scaling(
        self, totals, scale, shift
    ):
        """The Table 5 observation: proportional workloads leave COST*
        unchanged (min-max normalization kills affine transforms)."""
        assume(max(totals) - min(totals) > 1e-6)
        base = normalize_costs(totals)
        scaled = normalize_costs([scale * t + shift for t in totals])
        for a, b in zip(base, scaled):
            assert abs(a - b) < 1e-6


@st.composite
def plans(draw):
    n_sources = draw(st.integers(1, 5))
    groups = []
    counter = 0
    for index in range(n_sources):
        n_relations = draw(st.integers(1, 4))
        names = tuple(f"R{counter + i}" for i in range(n_relations))
        counter += n_relations
        groups.append(SourceGroup(f"IS{index}", names))
    return MaintenancePlan(tuple(groups), groups[0].relations[0])


class TestCostProperties:
    @given(plans())
    @settings(max_examples=100)
    def test_message_bounds(self, plan):
        messages = cf_messages(plan)
        assert 0 <= messages <= 2 * plan.source_count
        assert cf_messages_counted(plan) == 1 + 2 * len(
            plan.queried_sources()
        )

    @given(plans())
    @settings(max_examples=100)
    def test_bytes_and_io_non_negative(self, plan):
        stats = SpaceStatistics()
        assert cf_bytes(plan, stats) > 0  # at least the notification
        assert cf_io(plan, stats) >= 0

    @given(plans())
    @settings(max_examples=60)
    def test_io_upper_bound_dominates_lower(self, plan):
        stats = SpaceStatistics()
        assert cf_io(plan, stats, upper=True) >= cf_io(plan, stats)

    @given(plans(), st.integers(2, 10))
    @settings(max_examples=60)
    def test_bytes_monotone_in_cardinality(self, plan, factor):
        lean = SpaceStatistics()
        fat = SpaceStatistics()
        for group in plan.groups:
            for name in group.relations:
                lean.register_simple(name, 100)
                fat.register_simple(name, 100 * factor)
        assert cf_bytes(plan, fat) >= cf_bytes(plan, lean)
