"""Serial/parallel parity: executors must never change committed outcomes.

The acceptance property of the scheduler: whatever the executor
(``serial`` / ``threads`` / ``processes``), with or without search
coalescing, a scheduled batch commits the identical winners with the
identical QC-Values and materializes the identical extents as the serial
reference.  Hypothesis drives the storm generators over seeds and
shapes; every configuration is compared against the default scheduler's
fingerprint.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import ScheduleConfig
from repro.core.eve import EVESystem
from repro.sync.scheduler import SynchronizationScheduler, _fork_available
from repro.workloadgen.scenarios import (
    build_evolution_storm_scenario,
    build_scheduler_stress_scenario,
)


def storm_system(seed, views, changes):
    scenario = build_evolution_storm_scenario(
        views=views,
        view_relations=max(3, views // 3),
        spare_relations=4,
        changes=changes,
        sources=3,
        hot_renames=min(4, changes - 2),
        replacement_deletes=2,
        seed=seed,
    )
    eve = EVESystem(space=scenario.space)
    for view in scenario.views:
        eve.define_view(view, materialize=False)
    return eve, scenario.changes


def stress_system(views, relations, donors):
    scenario = build_scheduler_stress_scenario(
        views=views,
        view_relations=relations,
        donors_per_relation=donors,
        view_attributes=2,
        sources=3,
    )
    eve = EVESystem(space=scenario.space)
    for view in scenario.views:
        eve.define_view(view, materialize=False)
    return eve, scenario.changes


def outcome_fingerprint(eve, results):
    # record.current compares structurally (ViewDefinition equality is
    # order-sensitive over SELECT/FROM/WHERE), so a committed rewriting
    # that differs anywhere — not just in the interface — breaks parity.
    return (
        [
            (record.name, record.alive, record.generations, record.current)
            for record in eve.vkb
        ],
        [
            (result.view_name, result.chosen.qc if result.chosen else None)
            for result in results
        ],
    )


SCHEDULERS = {
    "serial+coalesce": dict(coalesce=True),
    "threads": dict(executor="threads", max_workers=3),
    "threads+coalesce": dict(
        executor="threads", max_workers=3, coalesce=True
    ),
    "plan-order": dict(order="plan"),
}


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    views=st.integers(min_value=6, max_value=24),
    changes=st.integers(min_value=6, max_value=18),
)
def test_executors_commit_identical_outcomes_on_storms(
    seed, views, changes
):
    reference_eve, batch = storm_system(seed, views, changes)
    reference = outcome_fingerprint(
        reference_eve, reference_eve.apply_changes(batch)
    )
    for label, config in SCHEDULERS.items():
        eve, batch = storm_system(seed, views, changes)
        results = eve.apply_changes(
            batch, scheduler=SynchronizationScheduler(ScheduleConfig(**config))
        )
        assert outcome_fingerprint(eve, results) == reference, label


@settings(max_examples=4, deadline=None)
@given(
    views=st.integers(min_value=6, max_value=20),
    donors=st.integers(min_value=1, max_value=3),
)
def test_executors_commit_identical_outcomes_on_salvage_storms(
    views, donors
):
    relations = max(2, views // 4)
    reference_eve, batch = stress_system(views, relations, donors)
    reference = outcome_fingerprint(
        reference_eve, reference_eve.apply_changes(batch)
    )
    for label, config in SCHEDULERS.items():
        eve, batch = stress_system(views, relations, donors)
        results = eve.apply_changes(
            batch, scheduler=SynchronizationScheduler(ScheduleConfig(**config))
        )
        assert outcome_fingerprint(eve, results) == reference, label


@pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)
@pytest.mark.parametrize("coalesce", [False, True], ids=["plain", "coalesce"])
def test_process_executor_commits_identical_outcomes(coalesce):
    reference_eve, batch = stress_system(views=12, relations=4, donors=2)
    reference = outcome_fingerprint(
        reference_eve, reference_eve.apply_changes(batch)
    )
    eve, batch = stress_system(views=12, relations=4, donors=2)
    scheduler = SynchronizationScheduler(
        ScheduleConfig(executor="processes", max_workers=2, coalesce=coalesce)
    )
    results = eve.apply_changes(batch, scheduler=scheduler)
    assert outcome_fingerprint(eve, results) == reference
    assert eve.last_schedule[0].executor == "processes"


@pytest.mark.parametrize("shards", [1, 2, 3])
def test_worker_pool_commits_identical_outcomes(shards):
    """The persistent-worker executor is plan-order byte-identical to
    serial for every shard count — including ``shards=1``, where the
    whole VKB lives in a single worker."""
    reference_eve, batch = stress_system(views=12, relations=4, donors=2)
    reference = outcome_fingerprint(
        reference_eve, reference_eve.apply_changes(batch)
    )
    eve, batch = stress_system(views=12, relations=4, donors=2)
    scheduler = SynchronizationScheduler(
        ScheduleConfig(executor="workers", shards=shards, coalesce=True)
    )
    try:
        results = eve.apply_changes(batch, scheduler=scheduler)
    finally:
        scheduler.close()
    assert outcome_fingerprint(eve, results) == reference
    assert eve.last_schedule[0].executor == "workers"


def test_worker_pool_parity_on_mixed_storm():
    """Renames, deletes, and spare churn — the delta-broadcast path —
    commit the serial outcome through the sharded pool."""
    reference_eve, batch = storm_system(seed=5, views=12, changes=10)
    reference = outcome_fingerprint(
        reference_eve, reference_eve.apply_changes(batch)
    )
    eve, batch = storm_system(seed=5, views=12, changes=10)
    scheduler = SynchronizationScheduler(
        ScheduleConfig(executor="workers", shards=2, coalesce=True)
    )
    try:
        results = eve.apply_changes(batch, scheduler=scheduler)
    finally:
        scheduler.close()
    assert outcome_fingerprint(eve, results) == reference


def test_degraded_runs_still_salvage_every_view():
    """first_legal degradation trades QC for latency, never survival."""
    reference_eve, batch = stress_system(views=10, relations=5, donors=2)
    reference_results = reference_eve.apply_changes(batch)
    eve, batch = stress_system(views=10, relations=5, donors=2)
    results = eve.apply_changes(
        batch,
        scheduler=SynchronizationScheduler(
            ScheduleConfig(budget=0.0, degrade="first_legal")
        ),
    )
    assert [r.view_name for r in results] == [
        r.view_name for r in reference_results
    ]
    assert all(result.survived for result in results)
    total_reference = sum(r.chosen.qc for r in reference_results)
    total_degraded = sum(r.chosen.qc for r in results)
    assert total_degraded <= total_reference
