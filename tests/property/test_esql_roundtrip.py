"""Property-based tests: E-SQL printer/parser round trip on generated views."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.esql.ast import FromItem, SelectItem, ViewDefinition, WhereItem
from repro.esql.params import EvolutionFlags, ViewExtent
from repro.esql.parser import parse_view
from repro.esql.printer import format_view, format_view_compact
from repro.relational.expressions import (
    AttributeRef,
    Comparator,
    Constant,
    PrimitiveClause,
)

identifiers = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s.upper()
    not in {
        "CREATE", "VIEW", "AS", "SELECT", "FROM", "WHERE", "AND",
        "TRUE", "FALSE", "VE", "AD", "AR", "CD", "CR", "RD", "RR",
    }
)

flags = st.builds(EvolutionFlags, st.booleans(), st.booleans())
extents = st.sampled_from(list(ViewExtent))


@st.composite
def views(draw):
    relations = draw(
        st.lists(identifiers, min_size=1, max_size=3, unique=True)
    )
    n_select = draw(st.integers(1, 4))
    select = []
    used_outputs = set()
    for index in range(n_select):
        relation = draw(st.sampled_from(relations))
        attribute = draw(identifiers)
        alias = f"out{index}"
        used_outputs.add(alias)
        select.append(
            SelectItem(
                AttributeRef(attribute, relation), draw(flags), alias
            )
        )
    from_items = [FromItem(name, draw(flags)) for name in relations]
    where = []
    for _ in range(draw(st.integers(0, 3))):
        relation = draw(st.sampled_from(relations))
        attribute = draw(identifiers)
        comparator = draw(st.sampled_from(list(Comparator)))
        constant = Constant(draw(st.integers(-99, 99)))
        where.append(
            WhereItem(
                PrimitiveClause(
                    AttributeRef(attribute, relation), comparator, constant
                ),
                draw(flags),
            )
        )
    return ViewDefinition(
        draw(identifiers), select, from_items, where, draw(extents)
    )


@given(views())
@settings(max_examples=120)
def test_pretty_round_trip(view):
    assert parse_view(format_view(view)) == view


@given(views())
@settings(max_examples=120)
def test_compact_round_trip(view):
    assert parse_view(format_view_compact(view)) == view


@given(views())
@settings(max_examples=60)
def test_interface_is_stable_under_round_trip(view):
    reparsed = parse_view(format_view(view))
    assert reparsed.interface == view.interface
    assert reparsed.relation_names == view.relation_names
    assert reparsed.extent_parameter == view.extent_parameter
