"""Property-based tests: the MKB stays consistent under change streams.

Random sequences of capability changes applied through the information
space must never leave dangling constraints (the MKB Consistency Checker
finds nothing), and retired knowledge must keep growing monotonically.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.misd.constraints import (
    JoinConstraint,
    PCConstraint,
    PCRelationship,
    RelationFragment,
)
from repro.esql.parser import parse_condition_clause
from repro.relational.expressions import Condition
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.space import InformationSpace

RELATIONS = ["R0", "R1", "R2", "R3"]
ATTRS = ["A", "B", "C"]


def build_space():
    space = InformationSpace()
    for index, name in enumerate(RELATIONS):
        space.add_source(f"IS{index}")
        space.register_relation(f"IS{index}", Relation(Schema(name, ATTRS)))
    # A web of constraints to stress the evolution hooks.
    for left, right in [("R0", "R1"), ("R1", "R2"), ("R2", "R3")]:
        space.mkb.add_join_constraint(
            JoinConstraint(
                left,
                right,
                Condition([parse_condition_clause(f"{left}.A = {right}.A")]),
            )
        )
        space.mkb.add_pc_constraint(
            PCConstraint(
                RelationFragment(left, ("A", "B")),
                RelationFragment(right, ("A", "B")),
                PCRelationship.SUBSET,
            )
        )
    return space


change_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["delete_relation", "delete_attribute", "rename_attribute",
             "rename_relation"]
        ),
        st.sampled_from(RELATIONS),
        st.sampled_from(ATTRS),
        st.integers(0, 999),
    ),
    max_size=8,
)


def apply_ops(space, operations):
    """Apply each op when still applicable; returns #applied."""
    applied = 0
    for kind, relation, attribute, nonce in operations:
        if not space.has_relation(relation):
            continue
        schema = space.relation(relation).schema
        try:
            if kind == "delete_relation":
                space.delete_relation(relation)
            elif kind == "delete_attribute":
                if attribute not in schema or schema.arity <= 1:
                    continue
                space.delete_attribute(relation, attribute)
            elif kind == "rename_attribute":
                if attribute not in schema:
                    continue
                space.rename_attribute(relation, attribute, f"{attribute}_{nonce}")
            else:
                space.rename_relation(relation, f"{relation}_{nonce}")
            applied += 1
        except Exception as exc:  # pragma: no cover - any raise is a bug
            raise AssertionError(
                f"{kind} on {relation}.{attribute} raised {exc!r}"
            ) from exc
    return applied


@given(change_ops)
@settings(max_examples=100, deadline=None)
def test_mkb_always_consistent_after_changes(operations):
    space = build_space()
    apply_ops(space, operations)
    problems = space.mkb.check_consistency()
    assert problems == [], problems


@given(change_ops)
@settings(max_examples=100, deadline=None)
def test_live_constraints_reference_live_schemas(operations):
    space = build_space()
    apply_ops(space, operations)
    mkb = space.mkb
    for jc in mkb.join_constraints():
        assert jc.left_relation in mkb
        assert jc.right_relation in mkb
    for pc in mkb.pc_constraints():
        for fragment in (pc.left, pc.right):
            schema = mkb.schema(fragment.relation)
            for name in fragment.attributes:
                assert name in schema


@given(change_ops)
@settings(max_examples=60, deadline=None)
def test_space_and_mkb_schemas_stay_synchronized(operations):
    space = build_space()
    apply_ops(space, operations)
    for name, relation in space.relations().items():
        assert space.mkb.schema(name) == relation.schema


@given(change_ops)
@settings(max_examples=60, deadline=None)
def test_historical_knowledge_never_shrinks(operations):
    space = build_space()
    mkb = space.mkb
    previous = 0
    for op in operations:
        apply_ops(space, [op])
        retired = len(mkb._historical_pc) + len(mkb._historical_join)
        assert retired >= previous
        previous = retired
