"""Property-based test: incremental maintenance equals recomputation.

The fundamental correctness invariant of Algorithm 1: replaying any
stream of inserts/deletes through the maintainer leaves the materialized
extent identical to recomputing the view from scratch.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.esql.evaluator import evaluate_view
from repro.esql.parser import parse_view
from repro.maintenance.simulator import ViewMaintainer
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.space import InformationSpace

VALUES = st.integers(0, 6)
ROWS = st.tuples(VALUES, VALUES)

VIEWS = [
    "CREATE VIEW V AS SELECT R.A, R.B FROM R",
    "CREATE VIEW V AS SELECT R.A FROM R WHERE R.B > 2",
    "CREATE VIEW V AS SELECT R.A, S.C FROM R, S WHERE R.A = S.A",
    (
        "CREATE VIEW V AS SELECT R.B, S.C FROM R, S "
        "WHERE R.A = S.A AND S.C < 4"
    ),
]


@st.composite
def workload(draw):
    initial_r = draw(st.lists(ROWS, max_size=8))
    initial_s = draw(st.lists(ROWS, max_size=8))
    view_text = draw(st.sampled_from(VIEWS))
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.sampled_from(["R", "S"]),
                ROWS,
            ),
            max_size=12,
        )
    )
    return initial_r, initial_s, view_text, operations


@given(workload())
@settings(max_examples=120, deadline=None)
def test_incremental_equals_recompute(data):
    initial_r, initial_s, view_text, operations = data
    space = InformationSpace()
    space.add_source("IS1")
    space.add_source("IS2")
    space.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B"]), initial_r),
        RelationStatistics(cardinality=max(len(initial_r), 1)),
    )
    space.register_relation(
        "IS2",
        Relation(Schema("S", ["A", "C"]), initial_s),
        RelationStatistics(cardinality=max(len(initial_s), 1)),
    )
    view = parse_view(view_text)
    if "S" not in view.relation_names:
        operations = [op for op in operations if op[1] != "S"]
    extent = evaluate_view(view, space.relations())
    maintainer = ViewMaintainer(space)

    for kind, relation_name, row in operations:
        source = space.owner_of(relation_name)
        if kind == "insert":
            update = source.insert(relation_name, row)
        else:
            relation = source.relation(relation_name)
            if row not in relation.rows:
                continue  # deleting a missing tuple is not a valid update
            update = source.delete(relation_name, row)
        maintainer.maintain(view, extent, update)
        recomputed = evaluate_view(view, space.relations())
        assert sorted(extent.rows) == sorted(recomputed.rows)


@given(workload())
@settings(max_examples=60, deadline=None)
def test_counters_monotone_and_message_parity(data):
    """Counters never decrease, and messages come in notification + round
    trips (odd parity per update for multi-source views)."""
    initial_r, initial_s, view_text, operations = data
    space = InformationSpace()
    space.add_source("IS1")
    space.add_source("IS2")
    space.register_relation(
        "IS1", Relation(Schema("R", ["A", "B"]), initial_r),
        RelationStatistics(cardinality=max(len(initial_r), 1)),
    )
    space.register_relation(
        "IS2", Relation(Schema("S", ["A", "C"]), initial_s),
        RelationStatistics(cardinality=max(len(initial_s), 1)),
    )
    view = parse_view(view_text)
    extent = evaluate_view(view, space.relations())
    maintainer = ViewMaintainer(space)
    previous_messages = 0
    for kind, relation_name, row in operations:
        if relation_name not in view.relation_names:
            continue
        if kind == "delete":
            continue
        update = space.owner_of(relation_name).insert(relation_name, row)
        counters = maintainer.maintain(view, extent, update)
        assert counters.messages % 2 == 1  # 1 notification + 2k round trips
        assert maintainer.counters.messages > previous_messages
        previous_messages = maintainer.counters.messages
