"""Property-based tests for QC-Model ranking invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.misd.statistics import RelationStatistics
from repro.qc.model import QCModel
from repro.qc.params import TradeoffParameters
from repro.relational.relation import Relation
from repro.space.changes import DeleteRelation
from repro.space.space import InformationSpace
from repro.sync.synchronizer import ViewSynchronizer
from repro.esql.parser import parse_view
from repro.workloadgen.generator import make_schema


@st.composite
def substitute_problem(draw):
    """R2 deleted with 2..5 substitute candidates of drawn cardinalities."""
    cardinalities = draw(
        st.lists(
            st.integers(100, 10_000), min_size=2, max_size=5, unique=True
        )
    )
    r2_cardinality = draw(st.integers(500, 8_000))
    space = InformationSpace()
    space.mkb.statistics.join_selectivity = 0.005
    space.add_source("IS0")
    space.register_relation(
        "IS0",
        Relation(make_schema("R1", ["A", "K"])),
        RelationStatistics(cardinality=400, tuple_size=100),
    )
    space.add_source("IS1")
    space.register_relation(
        "IS1",
        Relation(make_schema("R2", ["A", "B"])),
        RelationStatistics(cardinality=r2_cardinality, tuple_size=100),
    )
    for index, cardinality in enumerate(cardinalities):
        name, source = f"S{index}", f"IS{index + 2}"
        space.add_source(source)
        space.register_relation(
            source,
            Relation(make_schema(name, ["A", "B"])),
            RelationStatistics(cardinality=cardinality, tuple_size=100),
        )
        if cardinality <= r2_cardinality:
            space.mkb.add_containment(name, "R2", ["A", "B"])
        else:
            space.mkb.add_containment("R2", name, ["A", "B"])
    view = parse_view(
        """
        CREATE VIEW V (VE = '~') AS
        SELECT R1.K, R2.A (AR = true), R2.B (AR = true)
        FROM R1, R2 (RR = true)
        WHERE (R1.A = R2.A) (CR = true)
        """
    )
    space.delete_relation("R2")
    rewritings = ViewSynchronizer(space.mkb).synchronize(
        view, DeleteRelation("IS1", "R2")
    )
    return space, rewritings


quality_weights = st.floats(0.0, 1.0)


@given(substitute_problem())
@settings(max_examples=50, deadline=None)
def test_scores_always_in_unit_interval(problem):
    space, rewritings = problem
    model = QCModel(space.mkb)
    for evaluation in model.evaluate(rewritings, updated_relation="R1"):
        assert 0.0 <= evaluation.qc <= 1.0
        assert 0.0 <= evaluation.quality.dd <= 1.0
        assert 0.0 <= evaluation.normalized_cost <= 1.0


@given(substitute_problem())
@settings(max_examples=50, deadline=None)
def test_ranking_is_a_permutation(problem):
    space, rewritings = problem
    model = QCModel(space.mkb)
    evaluations = model.evaluate(rewritings, updated_relation="R1")
    assert sorted(e.rank for e in evaluations) == list(
        range(1, len(rewritings) + 1)
    )
    scores = [e.qc for e in evaluations]
    assert scores == sorted(scores, reverse=True)


@given(substitute_problem())
@settings(max_examples=40, deadline=None)
def test_pure_quality_prefers_minimal_divergence(problem):
    space, rewritings = problem
    model = QCModel(
        space.mkb, TradeoffParameters().with_quality_weight(1.0)
    )
    evaluations = model.evaluate(rewritings, updated_relation="R1")
    best = evaluations[0]
    assert best.quality.dd == pytest.approx(
        min(e.quality.dd for e in evaluations)
    )


@given(substitute_problem())
@settings(max_examples=40, deadline=None)
def test_pure_cost_prefers_cheapest(problem):
    space, rewritings = problem
    model = QCModel(
        space.mkb, TradeoffParameters().with_quality_weight(0.0)
    )
    evaluations = model.evaluate(rewritings, updated_relation="R1")
    best = evaluations[0]
    assert best.cost.total == pytest.approx(
        min(e.cost.total for e in evaluations)
    )


@given(substitute_problem())
@settings(max_examples=30, deadline=None)
def test_evaluation_is_deterministic(problem):
    space, rewritings = problem
    model = QCModel(space.mkb)
    first = model.evaluate(rewritings, updated_relation="R1")
    second = model.evaluate(rewritings, updated_relation="R1")
    assert [(e.name, e.rank, e.qc) for e in first] == [
        (e.name, e.rank, e.qc) for e in second
    ]
