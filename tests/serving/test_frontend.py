"""System-level serving plane: EVESystem.snapshot + ServingFrontend.

Pins the tentpole contract at the public API: snapshots stay stable
across evolution batches, the bus surfaces publish/release accounting,
and the asyncio frontend answers reads concurrently with a running
synchronization on its writer thread.
"""

import asyncio

import pytest

from repro.config import SystemConfig
from repro.core.eve import EVESystem
from repro.errors import SynchronizationError
from repro.events import SnapshotPublished, SnapshotReleased
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.serving import ServedRead, ServingFrontend
from repro.space.changes import DeleteRelation


def build_system(config=None):
    eve = EVESystem(config=config)
    eve.add_source("IS1")
    eve.add_source("IS2")
    eve.register_relation(
        "IS1",
        Relation(Schema("R", ["A", "B"]), [(1, 10), (2, 20)]),
        RelationStatistics(cardinality=2),
    )
    eve.register_relation(
        "IS2",
        Relation(Schema("RM", ["A", "B"]), [(1, 10), (2, 20)]),
        RelationStatistics(cardinality=2),
    )
    eve.mkb.add_equivalence("R", "RM", ["A", "B"])
    eve.define_view(
        "CREATE VIEW V (VE = '~') AS "
        "SELECT R.A (AR = true), R.B (AD = true, AR = true) "
        "FROM R (RR = true)"
    )
    eve.define_view(
        "CREATE VIEW W (VE = '~') AS "
        "SELECT R.A (AR = true), R.B (AD = true, AR = true) "
        "FROM R (RR = true)"
    )
    return eve


class TestSystemSnapshot:
    def test_snapshot_survives_an_evolution_batch(self):
        eve = build_system()
        before = eve.snapshot()
        rows_before = tuple(before.extent("V").rows)
        eve.apply_changes([DeleteRelation("IS1", "R")])
        # The pinned snapshot still serves the pre-batch extent…
        assert tuple(before.extent("V").rows) == rows_before
        # …while a fresh snapshot serves the rewritten one.
        after = eve.snapshot()
        assert after.version == before.version + 1
        assert tuple(after.extent("V").rows) == tuple(eve.extent("V").rows)
        before.release()
        after.release()

    def test_snapshot_survives_an_update_storm(self):
        eve = build_system()
        before = eve.snapshot()
        assert before.extent("V").cardinality == 2
        eve.apply_updates(
            [("R", "insert", (3, 30)), ("RM", "insert", (3, 30))]
        )
        assert before.extent("V").cardinality == 2  # pre-storm version
        with eve.snapshot() as after:
            assert after.extent("V").cardinality == 3
        before.release()

    def test_one_publish_per_batch_not_per_view(self):
        eve = build_system()
        eve.snapshot().release()
        published = []
        eve.subscribe(SnapshotPublished, published.append)
        eve.apply_changes([DeleteRelation("IS1", "R")])
        # Two views were rewritten and rematerialized; one version.
        (event,) = published
        assert set(event.touched) >= {"V", "W"}
        assert event.version == eve._extents.version

    def test_release_event_carries_remaining_pins(self):
        eve = build_system()
        released = []
        eve.subscribe(SnapshotReleased, released.append)
        first = eve.snapshot()
        second = eve.snapshot()
        first.release()
        second.release()
        assert [event.remaining for event in released] == [1, 0]
        assert released[0].version == first.version

    def test_unmaterialized_view_reads_as_absent(self):
        eve = build_system()
        with eve.snapshot() as snapshot:
            assert snapshot.get("nope") is None
            with pytest.raises(KeyError):
                snapshot.extent("nope")


class TestServingFrontend:
    def test_read_returns_versioned_rows(self):
        eve = build_system()
        frontend = ServingFrontend(eve)
        try:
            read = frontend.read_sync("V")
            assert isinstance(read, ServedRead)
            assert read.view == "V"
            assert read.version == frontend.version
            assert sorted(read.rows) == sorted(eve.extent("V").rows)
            assert read.cardinality == 2
        finally:
            frontend.close()

    def test_unknown_view_raises_synchronization_error(self):
        eve = build_system()
        frontend = ServingFrontend(eve)
        try:
            with pytest.raises(SynchronizationError, match="nope"):
                frontend.read_sync("nope")
        finally:
            frontend.close()

    def test_multi_view_snapshot_reads_one_version(self):
        eve = build_system()
        frontend = ServingFrontend(eve)
        try:
            with frontend.snapshot() as snapshot:
                v = tuple(snapshot.extent("V").rows)
                w = tuple(snapshot.extent("W").rows)
            assert sorted(v) == sorted(w)  # same defining relation
        finally:
            frontend.close()

    def test_async_reads_interleave_with_a_writer_batch(self):
        eve = build_system()

        async def scenario():
            async with ServingFrontend(eve) as frontend:
                start_version = frontend.version

                async def storm():
                    return await frontend.apply_changes(
                        [DeleteRelation("IS1", "R")]
                    )

                async def reader():
                    reads = []
                    while frontend.version == start_version:
                        reads.append(await frontend.read("V"))
                        await asyncio.sleep(0)
                    reads.append(await frontend.read("V"))
                    return reads

                results, reads = await asyncio.gather(storm(), reader())
                return start_version, results, reads

        start_version, results, reads = asyncio.run(scenario())
        assert all(result.survived for result in results)
        # Every read carries the version it was served from, and reads
        # taken before the commit swap served the pre-batch rows.
        for read in reads:
            assert read.version in (start_version, start_version + 1)
        assert reads[-1].version == start_version + 1
        assert sorted(reads[-1].rows) == sorted(eve.extent("V").rows)

    def test_async_updates_report_counters(self):
        eve = build_system()

        async def scenario():
            async with ServingFrontend(eve) as frontend:
                counters = await frontend.apply_updates(
                    [("R", "insert", (3, 30)), ("RM", "insert", (3, 30))]
                )
                read = await frontend.read("V")
                return counters, read

        counters, read = asyncio.run(scenario())
        assert counters.messages >= 0
        assert read.cardinality == 3

    def test_serving_section_in_report_after_frontend_writes(self):
        eve = build_system()

        async def scenario():
            async with ServingFrontend(eve) as frontend:
                await frontend.apply_changes([DeleteRelation("IS1", "R")])

        asyncio.run(scenario())
        serving = eve.last_report.to_dict()["serving"]
        assert serving["enabled"] is True
        assert serving["published"] == 1
        assert serving["copied"] == 0

    def test_workers_executor_serves_reads_too(self):
        eve = build_system(SystemConfig.sharded(2))

        async def scenario():
            async with ServingFrontend(eve) as frontend:
                storm = asyncio.create_task(
                    frontend.apply_changes([DeleteRelation("IS1", "R")])
                )
                reads = []
                while not storm.done():
                    reads.append(await frontend.read("V"))
                    await asyncio.sleep(0)
                await storm
                reads.append(await frontend.read("V"))
                return reads

        try:
            reads = asyncio.run(scenario())
        finally:
            eve.close()
        final = reads[-1]
        assert sorted(final.rows) == sorted(eve.extent("V").rows)
        versions = [read.version for read in reads]
        assert versions == sorted(versions)  # monotone per client
