"""Unit tests for the MVCC extent store (repro.relational.versioning).

The storage half of the serving-plane contract: direct mode is a plain
dict with zero overhead, the first snapshot arms serving mode, batches
stage into an overlay and publish one immutable version at commit, and
pinned readers keep their mapping across any number of later publishes.
"""

import pytest

from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.versioning import ExtentStore


def rel(name, rows):
    return Relation(Schema(name, ["A", "B"]), rows)


class TestDirectMode:
    def test_behaves_like_a_dict(self):
        store = ExtentStore()
        store["V"] = rel("V", [(1, 2)])
        assert "V" in store
        assert store["V"].rows == [(1, 2)]
        assert store.get("W") is None
        store.update({"W": rel("W", [(3, 4)])})
        assert len(store) == 2
        assert sorted(store) == ["V", "W"]
        assert store.names() == ("V", "W")
        assert store.pop("W").rows == [(3, 4)]
        assert store.pop("W", "gone") == "gone"
        with pytest.raises(KeyError):
            store["missing"]

    def test_no_version_churn_without_snapshots(self):
        store = ExtentStore()
        with store.batch():
            store["V"] = rel("V", [(1, 2)])
            store.pop("V")
            store["V"] = rel("V", [(5, 6)])
        assert store.version == 0
        assert store.publishes == 0
        assert store.staged_writes == 0
        assert not store.serving

    def test_mutable_returns_the_live_relation(self):
        store = ExtentStore()
        extent = rel("V", [(1, 2)])
        store["V"] = extent
        assert store.mutable("V") is extent  # no copy in direct mode
        assert store.copies == 0
        assert store.mutable("missing") is None


class TestServingMode:
    def test_first_snapshot_arms_serving(self):
        store = ExtentStore()
        store["V"] = rel("V", [(1, 2)])
        snapshot = store.snapshot()
        assert store.serving
        assert snapshot.version == 0
        assert snapshot.extent("V").rows == [(1, 2)]
        snapshot.release()

    def test_batch_commit_publishes_one_version(self):
        store = ExtentStore()
        store["V"] = rel("V", [(1, 2)])
        store.snapshot().release()
        with store.batch():
            store["V"] = rel("V", [(9, 9)])
            store["W"] = rel("W", [(3, 4)])
        assert store.version == 1
        assert store.publishes == 1
        with store.snapshot() as snapshot:
            assert snapshot.version == 1
            assert snapshot.extent("V").rows == [(9, 9)]
            assert snapshot.names() == ("V", "W")

    def test_pinned_reader_never_sees_the_open_batch(self):
        store = ExtentStore()
        store["V"] = rel("V", [(1, 2)])
        store.snapshot().release()
        reader = store.snapshot()
        with store.batch():
            store["V"] = rel("V", [(9, 9)])
            store.pop("V")  # even deletion stays invisible
            # Mid-batch: the pinned mapping is untouched.
            assert reader.extent("V").rows == [(1, 2)]
        # Post-commit: the pin still resolves to its own version.
        assert reader.version == 0
        assert reader.extent("V").rows == [(1, 2)]
        assert store.get("V") is None
        reader.release()

    def test_out_of_batch_write_publishes_immediately(self):
        store = ExtentStore()
        store.snapshot().release()
        store["V"] = rel("V", [(1, 2)])
        assert store.version == 1
        store.pop("V")
        assert store.version == 2
        assert store.snapshot().get("V") is None

    def test_nested_batches_publish_once_at_outermost_exit(self):
        store = ExtentStore()
        store.snapshot().release()
        with store.batch():
            store["V"] = rel("V", [(1, 2)])
            with store.batch():
                store["W"] = rel("W", [(3, 4)])
            assert store.version == 0  # inner exit does not publish
        assert store.version == 1
        assert store.publishes == 1

    def test_empty_batch_publishes_nothing(self):
        store = ExtentStore()
        store["V"] = rel("V", [(1, 2)])
        store.snapshot().release()
        with store.batch():
            pass
        assert store.version == 0
        assert store.publishes == 0

    def test_writer_reads_see_the_overlay(self):
        store = ExtentStore()
        store["V"] = rel("V", [(1, 2)])
        store.snapshot().release()
        with store.batch():
            store["V"] = rel("V", [(9, 9)])
            # The writer's own view includes its staged writes…
            assert store["V"].rows == [(9, 9)]
            store.pop("V")
            assert store.get("V") is None
            assert "V" not in store
            assert store.names() == ()


class TestCopyOnWrite:
    def test_mutable_copies_once_per_batch(self):
        store = ExtentStore()
        live = rel("V", [(1, 2)])
        store["V"] = live
        store.snapshot().release()
        with store.batch():
            staged = store.mutable("V")
            assert staged is not live  # copy-on-write
            assert staged.rows == live.rows
            assert store.mutable("V") is staged  # second touch: no copy
        assert store.copies == 1
        # The published version carries the staged copy; the pinned
        # original Relation was never mutated.
        assert store.snapshot().extent("V") is staged

    def test_untouched_views_share_their_relation_across_versions(self):
        store = ExtentStore()
        untouched = rel("U", [(7, 7)])
        store["U"] = untouched
        store["V"] = rel("V", [(1, 2)])
        store.snapshot().release()
        for generation in range(3):
            with store.batch():
                store["V"] = rel("V", [(generation, generation)])
        assert store.copies == 0  # fresh assignment, not COW
        # Byte-for-byte sharing: the same object, three versions later.
        assert store.snapshot().extent("U") is untouched

    def test_mutable_of_staged_deletion_is_none(self):
        store = ExtentStore()
        store["V"] = rel("V", [(1, 2)])
        store.snapshot().release()
        with store.batch():
            store.pop("V")
            assert store.mutable("V") is None


class TestPins:
    def test_pin_accounting(self):
        store = ExtentStore()
        store["V"] = rel("V", [(1, 2)])
        first = store.snapshot()
        second = store.snapshot()
        assert store.active_pins == 2
        first.release()
        first.release()  # idempotent
        assert store.active_pins == 1
        second.release()
        assert store.active_pins == 0

    def test_pins_span_versions(self):
        store = ExtentStore()
        store["V"] = rel("V", [(1, 2)])
        old = store.snapshot()
        with store.batch():
            store["V"] = rel("V", [(9, 9)])
        new = store.snapshot()
        assert (old.version, new.version) == (0, 1)
        assert store.active_pins == 2
        old.release()
        new.release()

    def test_callbacks_fire_outside_the_lock(self):
        published, released = [], []
        store = ExtentStore(
            on_publish=lambda *args: published.append(args),
            on_release=lambda *args: released.append(args),
        )
        store["V"] = rel("V", [(1, 2)])
        snapshot = store.snapshot()
        with store.batch():
            store["W"] = rel("W", [(3, 4)])
            store["V"] = rel("V", [(5, 6)])
        assert published == [(1, ("V", "W"), 2, 1)]
        snapshot.release()
        assert released == [(0, 0)]
