"""Concurrency stress: snapshot reads are never torn, on any executor.

The satellite-3 acceptance property of the serving plane: reader
threads that continuously query views while ``apply_changes`` /
``apply_updates`` storms run on the ``threads``, ``processes``, and
``workers`` executors must only ever observe a committed version — the
rows of every read equal the serial reference extent at that read's
version, never a mixture of two batches.

The serial reference replays the identical batch sequence and records
the extent of every view after each publish; because both systems
publish exactly one version per batch in the same order, version
numbers align and every concurrent read is checkable row-for-row.
"""

import threading

import pytest

from repro.config import ScheduleConfig, SystemConfig
from repro.core.eve import EVESystem
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.changes import (
    DeleteRelation,
    RenameAttribute,
    RenameRelation,
)

VIEWS = ["V0", "V1", "V2", "V3", "V4"]


def build_system(config=None):
    """Three mirrored relations, five views spread over them."""
    eve = EVESystem(config=config)
    eve.add_source("IS0")
    eve.add_source("IS1")
    for name in ("R0", "R1", "R2"):
        eve.register_relation(
            "IS0",
            Relation(Schema(name, ["A", "B"]), [(1, 10), (2, 20)]),
            RelationStatistics(cardinality=400, tuple_size=100),
        )
        eve.register_relation(
            "IS1",
            Relation(Schema(f"{name}M", ["A", "B"]), [(1, 10), (2, 20)]),
            RelationStatistics(cardinality=400, tuple_size=100),
        )
        eve.mkb.add_equivalence(name, f"{name}M", ["A", "B"])
    for index, relation in enumerate(["R0", "R0", "R1", "R2", "R1"]):
        eve.define_view(
            f"CREATE VIEW V{index} (VE = '~') AS "
            f"SELECT {relation}.A (AR = true), "
            f"{relation}.B (AD = true, AR = true) "
            f"FROM {relation} (RR = true)"
        )
    return eve


#: One writer storm: alternating update streams and change batches.
#: Each entry publishes exactly one version.
BATCHES = [
    ("updates", [("R0", "insert", (3, 30)), ("R0M", "insert", (3, 30))]),
    ("changes", [RenameAttribute("IS0", "R0", "A", "A2")]),
    ("updates", [("R1", "insert", (4, 40)), ("R1M", "insert", (4, 40))]),
    ("changes", [DeleteRelation("IS0", "R1")]),
    ("changes", [RenameRelation("IS0", "R2", "R2X")]),
    ("updates", [("R2X", "delete", (1, 10)), ("R2M", "delete", (1, 10))]),
]


def run_batch(eve, kind, payload):
    if kind == "updates":
        eve.apply_updates(list(payload))
    else:
        eve.apply_changes(list(payload))


def extents_by_version(eve):
    """{view: sorted rows} for every currently materialized view."""
    with eve.snapshot() as snapshot:
        return {
            name: tuple(sorted(snapshot.extent(name).rows))
            for name in snapshot.names()
        }


def serial_reference():
    """version -> {view: sorted rows} for the whole batch sequence."""
    eve = build_system()
    eve.snapshot().release()  # arm serving so versions align
    reference = {0: extents_by_version(eve)}
    for kind, payload in BATCHES:
        run_batch(eve, kind, payload)
        reference[eve._extents.version] = extents_by_version(eve)
    assert sorted(reference) == list(range(len(BATCHES) + 1))
    return reference, [
        (record.name, record.alive, record.generations, record.current)
        for record in eve.vkb
    ]


def storm_with_readers(config, reader_count=3):
    """Run the batch sequence under ``config`` with live readers."""
    eve = build_system(config)
    eve.snapshot().release()
    stop = threading.Event()
    observations = [[] for _ in range(reader_count)]
    errors = []

    def reader(slot):
        try:
            while not stop.is_set():
                with eve.snapshot() as snapshot:
                    for name in snapshot.names():
                        rows = tuple(sorted(snapshot.extent(name).rows))
                        observations[slot].append(
                            (snapshot.version, name, rows)
                        )
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(reader_count)
    ]
    for thread in threads:
        thread.start()
    try:
        for kind, payload in BATCHES:
            run_batch(eve, kind, payload)
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        eve.close()
    assert not errors, errors
    fingerprint = [
        (record.name, record.alive, record.generations, record.current)
        for record in eve.vkb
    ]
    return observations, fingerprint


EXECUTORS = [
    pytest.param(None, id="serial"),
    pytest.param(
        SystemConfig(
            schedule=ScheduleConfig(executor="threads", max_workers=2)
        ),
        id="threads",
    ),
    pytest.param(
        SystemConfig(
            schedule=ScheduleConfig(executor="processes", max_workers=2)
        ),
        id="processes",
    ),
    pytest.param(SystemConfig.sharded(2), id="workers"),
]


@pytest.mark.parametrize("config", EXECUTORS)
def test_reads_are_never_torn(config):
    reference, serial_vkb = serial_reference()
    observations, vkb = storm_with_readers(config)

    # Committed outcomes match the serial reference exactly.
    assert vkb == serial_vkb

    total = 0
    for slot, reads in enumerate(observations):
        versions = [version for version, _, _ in reads]
        # Monotone versions per reader: a client never travels back.
        assert versions == sorted(versions), f"reader {slot} went back"
        for version, name, rows in reads:
            total += 1
            expected = reference[version]
            # The read names a committed version and equals that
            # version's serial extent byte for byte — pre-batch or
            # post-batch, never a mixture.
            assert version in reference, (slot, version)
            assert name in expected, (slot, version, name)
            assert rows == expected[name], (
                f"reader {slot} tore view {name} at version {version}"
            )
    assert total > 0, "readers never observed anything"
