"""Integration: the analytic cost model vs the executed Algorithm 1.

The paper lists "experimental studies to compare the cost portion of our
QC-Model with the actual costs encountered by our system for incremental
view maintenance" as future work (Sec. 8).  Our substrate is executable,
so we run that comparison: the *measured* message counts must match the
analytic CF_M exactly (the protocol is deterministic), and measured bytes
must track the analytic CF_T estimate within the tolerance induced by the
synthetic data realizing the assumed selectivities only in expectation.
"""

import pytest

from repro.esql.evaluator import evaluate_view
from repro.esql.parser import parse_view
from repro.maintenance.simulator import ViewMaintainer
from repro.misd.statistics import RelationStatistics
from repro.qc.cost import cf_bytes, cf_messages_counted, plan_for_view
from repro.space.space import InformationSpace
from repro.workloadgen.generator import make_schema, populate_relation

JS = 0.02  # realized via key_space = 50
CARDINALITY = 200


@pytest.fixture
def setup():
    space = InformationSpace()
    key_space = round(1 / JS)
    for index, name in enumerate(["R0", "R1", "R2"]):
        source = f"IS{index}"
        space.add_source(source)
        relation = populate_relation(
            make_schema(name, ["A", "B"], attribute_size=4),
            CARDINALITY,
            seed=index + 1,
            key_space=key_space,
        )
        space.register_relation(
            source,
            relation,
            RelationStatistics(
                cardinality=CARDINALITY, tuple_size=8, selectivity=1.0
            ),
        )
    space.mkb.statistics.join_selectivity = JS
    view = parse_view(
        """
        CREATE VIEW V AS
        SELECT R0.A, R1.B AS B1, R2.B AS B2
        FROM R0, R1, R2
        WHERE R0.A = R1.A AND R1.A = R2.A
        """
    )
    return space, view


def run_updates(space, view, count, seed=42):
    """Insert ``count`` fresh tuples at R0, maintaining the view."""
    extent = evaluate_view(view, space.relations())
    maintainer = ViewMaintainer(space)
    import random

    rng = random.Random(seed)
    per_update = []
    for _ in range(count):
        row = (rng.randrange(50), rng.randrange(50))
        update = space.source("IS0").insert("R0", row)
        per_update.append(maintainer.maintain(view, extent, update))
    return extent, per_update


class TestMessagesExact:
    def test_measured_messages_match_analytic(self, setup):
        space, view = setup
        owners = {n: space.owner_of(n).name for n in view.relation_names}
        plan = plan_for_view(view, owners, updated_relation="R0")
        analytic = cf_messages_counted(plan)
        _, counters = run_updates(space, view, 10)
        for measured in counters:
            assert measured.messages == analytic


class TestBytesTracked:
    def test_measured_bytes_track_analytic_on_average(self, setup):
        space, view = setup
        owners = {n: space.owner_of(n).name for n in view.relation_names}
        plan = plan_for_view(view, owners, updated_relation="R0")
        analytic = cf_bytes(plan, space.mkb.statistics)
        _, counters = run_updates(space, view, 60)
        measured_mean = sum(c.bytes_transferred for c in counters) / len(
            counters
        )
        # Synthetic joins only realize js in expectation; allow 2x band.
        assert measured_mean == pytest.approx(analytic, rel=1.0)
        # The fixed protocol overhead (notification + first hop) is exact.
        assert min(c.bytes_transferred for c in counters) >= 8 * 2


class TestExtentStaysCorrect:
    def test_incremental_equals_recompute_after_stream(self, setup):
        space, view = setup
        extent, _ = run_updates(space, view, 30)
        recomputed = evaluate_view(view, space.relations())
        assert sorted(extent.rows) == sorted(recomputed.rows)
