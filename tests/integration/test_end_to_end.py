"""Integration: the travel-agency story from the paper's introduction.

A warehouse view over flight reservations and hotel bookings from several
travel agencies; one agency changes its capabilities.  Exercises the full
EVE loop: registration, E-SQL definition, materialization, incremental
maintenance, capability change, QC-ranked synchronization, and continued
maintenance against the rewritten view.
"""

import pytest

from repro.core.eve import EVESystem
from repro.esql.evaluator import evaluate_view
from repro.misd.statistics import RelationStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType


def string_schema(name, attrs):
    return Schema(name, [Attribute(a, AttributeType.STRING) for a in attrs])


@pytest.fixture
def eve():
    system = EVESystem()
    system.add_source("AgencyA")
    system.add_source("AgencyB")
    system.add_source("AgencyC")

    customers = Relation(
        string_schema("Customer", ["Name", "Address", "Phone"]),
        [
            ("ann", "12 Elm", "555-1"),
            ("bob", "9 Oak", "555-2"),
            ("cy", "4 Pine", "555-3"),
        ],
    )
    flights = Relation(
        string_schema("FlightRes", ["PName", "Dest"]),
        [("ann", "Asia"), ("bob", "Europe"), ("cy", "Asia")],
    )
    # AgencyC mirrors AgencyA's customer list (a replica).
    mirror = Relation(
        string_schema("CustomerMirror", ["Name", "Address", "Phone"]),
        list(customers.rows),
    )
    system.register_relation(
        "AgencyA", customers, RelationStatistics(cardinality=3)
    )
    system.register_relation(
        "AgencyB", flights, RelationStatistics(cardinality=3)
    )
    system.register_relation(
        "AgencyC", mirror, RelationStatistics(cardinality=3)
    )
    system.mkb.add_equivalence(
        "Customer", "CustomerMirror", ["Name", "Address", "Phone"]
    )
    return system


ASIA_VIEW = """
CREATE VIEW AsiaCustomer (VE = '~') AS
SELECT Customer.Name (AR = true), Customer.Address (AD = true, AR = true),
       Customer.Phone (AD = true, AR = true)
FROM Customer (RR = true), FlightRes
WHERE (Customer.Name = FlightRes.PName) (CR = true)
  AND (FlightRes.Dest = 'Asia') (CD = true)
"""


class TestFullLifecycle:
    def test_materialization(self, eve):
        eve.define_view(ASIA_VIEW)
        assert sorted(eve.extent("AsiaCustomer").rows) == [
            ("ann", "12 Elm", "555-1"),
            ("cy", "4 Pine", "555-3"),
        ]

    def test_incremental_maintenance_before_change(self, eve):
        eve.define_view(ASIA_VIEW)
        eve.space.insert("FlightRes", ("bob", "Asia"))
        assert ("bob", "9 Oak", "555-2") in eve.extent("AsiaCustomer").rows

    def test_capability_change_rewrites_to_mirror(self, eve):
        eve.define_view(ASIA_VIEW)
        eve.space.delete_relation("Customer")
        assert eve.is_alive("AsiaCustomer")
        current = eve.vkb.current("AsiaCustomer")
        assert "CustomerMirror" in current.relation_names
        # Same interface, same answers — the replica is equivalent.
        assert current.interface == ("Name", "Address", "Phone")
        assert sorted(eve.extent("AsiaCustomer").rows) == [
            ("ann", "12 Elm", "555-1"),
            ("cy", "4 Pine", "555-3"),
        ]

    def test_maintenance_continues_after_synchronization(self, eve):
        eve.define_view(ASIA_VIEW)
        eve.space.delete_relation("Customer")
        eve.space.insert("CustomerMirror", ("di", "7 Ash", "555-4"))
        eve.space.insert("FlightRes", ("di", "Asia"))
        extent = eve.extent("AsiaCustomer")
        assert ("di", "7 Ash", "555-4") in extent.rows
        # Cross-check against recomputation.
        recomputed = evaluate_view(
            eve.vkb.current("AsiaCustomer"), eve.space.relations()
        )
        assert sorted(extent.rows) == sorted(recomputed.rows)

    def test_sync_result_records_ranking(self, eve):
        eve.define_view(ASIA_VIEW)
        eve.space.delete_relation("Customer")
        result = eve.synchronization_log[0]
        assert result.survived
        assert result.chosen is result.evaluations[0]
        assert result.chosen.qc == max(e.qc for e in result.evaluations)

    def test_second_change_kills_without_another_replica(self, eve):
        eve.define_view(ASIA_VIEW)
        eve.space.delete_relation("Customer")
        eve.space.delete_relation("CustomerMirror")
        assert not eve.is_alive("AsiaCustomer")
