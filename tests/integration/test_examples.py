"""Every example script must run clean — they are executable documentation."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def _env_with_src():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=_env_with_src(),
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert "OK" in completed.stdout


def test_examples_exist():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "travel_agency",
        "tradeoff_explorer",
        "evolving_space",
    } <= names
