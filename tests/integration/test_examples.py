"""Every example script must run clean — they are executable documentation."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert "OK" in completed.stdout


def test_examples_exist():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "travel_agency",
        "tradeoff_explorer",
        "evolving_space",
    } <= names
