"""Integration: the full Experiment 4 pipeline reproduces Table 4 / Fig. 15.

Exercises scenario generation, the space, the MKB (with retirement), the
synchronizer, and the QC-Model end to end.
"""

import pytest

from repro.qc.model import QCModel
from repro.qc.params import EXPERIMENT4_CASES, TradeoffParameters
from repro.space.changes import DeleteRelation
from repro.sync.legality import is_legal
from repro.sync.synchronizer import ViewSynchronizer
from repro.workloadgen.scenarios import build_cardinality_scenario


@pytest.fixture(scope="module")
def candidates():
    scenario = build_cardinality_scenario()
    scenario.space.delete_relation("R2")
    synchronizer = ViewSynchronizer(scenario.space.mkb)
    rewritings = synchronizer.synchronize(
        scenario.view, DeleteRelation("IS1", "R2")
    )
    rewritings.sort(key=lambda r: r.moves[-1].new_relation)
    return scenario, [r.renamed(f"V{i + 1}") for i, r in enumerate(rewritings)]


class TestCandidateGeneration:
    def test_five_substitutions_found(self, candidates):
        _, rewritings = candidates
        assert len(rewritings) == 5
        targets = [r.moves[-1].new_relation for r in rewritings]
        assert targets == ["S1", "S2", "S3", "S4", "S5"]

    def test_all_legal(self, candidates):
        _, rewritings = candidates
        assert all(is_legal(r) for r in rewritings)

    def test_interfaces_fully_preserved(self, candidates):
        scenario, rewritings = candidates
        for rewriting in rewritings:
            assert rewriting.view.interface == scenario.view.interface


class TestTable4:
    def test_full_table_case1(self, candidates):
        scenario, rewritings = candidates
        model = QCModel(scenario.space.mkb, TradeoffParameters())
        by_name = {
            e.name: e
            for e in model.evaluate(rewritings, updated_relation="R1")
        }
        # (DD_attr, DD_ext, Cost, Cost*, QC, rating) per Table 4.
        table4 = {
            "V1": (0.0, 0.25, 842.3, 0.0, 0.9325, 3),
            "V2": (0.0, 0.125, 1193.3, 0.25, 0.94125, 2),
            "V3": (0.0, 0.0, 1544.3, 0.5, 0.95, 1),
            "V4": (0.0, 0.1, 1895.3, 0.75, 0.898, 4),
            "V5": (0.0, 1 / 6, 2246.3, 1.0, 0.855, 5),
        }
        for name, (attr, ext, cost, norm, qc, rank) in table4.items():
            e = by_name[name]
            assert e.quality.dd_attr == pytest.approx(attr)
            assert e.quality.dd_ext == pytest.approx(ext, abs=1e-4)
            assert e.cost.total == pytest.approx(cost, abs=0.05)
            assert e.normalized_cost == pytest.approx(norm, abs=1e-6)
            assert e.qc == pytest.approx(qc, abs=1e-5)
            assert e.rank == rank

    def test_figure15_ranking_flips(self, candidates):
        """Fig. 15: V3 wins Case 1; V1 wins Cases 2 and 3."""
        scenario, rewritings = candidates
        winners = {}
        for label, params in EXPERIMENT4_CASES:
            model = QCModel(scenario.space.mkb, params)
            winners[label] = model.best(
                rewritings, updated_relation="R1"
            ).name
        assert winners == {"Case 1": "V3", "Case 2": "V1", "Case 3": "V1"}

    def test_subset_chain_quality_improves_towards_r2(self, candidates):
        """DD decreases along V1 -> V3 and rises again after (Sec. 7.4)."""
        scenario, rewritings = candidates
        model = QCModel(scenario.space.mkb, TradeoffParameters())
        by_name = {
            e.name: e.quality.dd
            for e in model.evaluate(rewritings, updated_relation="R1")
        }
        assert by_name["V1"] > by_name["V2"] > by_name["V3"]
        assert by_name["V3"] < by_name["V4"] < by_name["V5"]

    def test_cost_monotone_in_substitute_cardinality(self, candidates):
        scenario, rewritings = candidates
        model = QCModel(scenario.space.mkb, TradeoffParameters())
        evaluations = model.evaluate(rewritings, updated_relation="R1")
        costs = {e.name: e.cost.total for e in evaluations}
        assert (
            costs["V1"] < costs["V2"] < costs["V3"]
            < costs["V4"] < costs["V5"]
        )
