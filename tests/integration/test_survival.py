"""Integration: Experiment 1 ("survival" of a view, Sec. 7.1 / Fig. 12).

Replaceable components keep a view alive across successive capability
changes; choosing the non-replaceable branch first kills it at the next
change.  This is the paper's argument for the default w1 > w2.
"""


from repro.core.eve import EVESystem
from repro.qc.params import TradeoffParameters
from repro.qc.quality import dd_attr
from repro.space.changes import DeleteAttribute
from repro.sync.synchronizer import ViewSynchronizer
from repro.workloadgen.scenarios import build_survival_scenario


class TestRewritingGeneration:
    def test_three_alternatives_exist(self):
        """V1 (via S), V2 (via T), V3 (drop A) — the Sec. 7.1 candidates."""
        scenario = build_survival_scenario()
        scenario.space.delete_attribute("R", "A")
        synchronizer = ViewSynchronizer(scenario.space.mkb)
        rewritings = synchronizer.synchronize(
            scenario.view, DeleteAttribute("IS1", "R", "A")
        )
        shapes = {r.view.relation_names for r in rewritings}
        assert ("S",) in shapes   # V1
        assert ("T",) in shapes   # V2
        assert ("R",) in shapes   # V3 (drop A, keep B)

    def test_interface_weights_order_candidates(self):
        """w1 > w2 prefers keeping the replaceable A; w2 > w1 prefers B."""
        scenario = build_survival_scenario()
        scenario.space.delete_attribute("R", "A")
        synchronizer = ViewSynchronizer(scenario.space.mkb)
        rewritings = synchronizer.synchronize(
            scenario.view, DeleteAttribute("IS1", "R", "A")
        )
        keeps_a = next(r for r in rewritings if r.view.relation_names == ("S",))
        keeps_b = next(r for r in rewritings if r.view.relation_names == ("R",))

        favour_replaceable = TradeoffParameters(w1=0.7, w2=0.3)
        assert dd_attr(
            scenario.view, keeps_a.view, favour_replaceable
        ) < dd_attr(scenario.view, keeps_b.view, favour_replaceable)

        favour_nonreplaceable = TradeoffParameters(w1=0.3, w2=0.7)
        assert dd_attr(
            scenario.view, keeps_a.view, favour_nonreplaceable
        ) > dd_attr(scenario.view, keeps_b.view, favour_nonreplaceable)


class TestLifeSpan:
    def _eve(self, w1, w2):
        scenario = build_survival_scenario()
        params = TradeoffParameters(w1=w1, w2=w2).with_divergence_weights(
            1.0, 0.0  # Sec. 7.1: "ignoring the view extent quality factor"
        )
        eve = EVESystem(params=params, space=scenario.space)
        eve.define_view(scenario.view, materialize=False)
        return eve

    def test_replaceable_branch_survives_two_changes(self):
        """Fig. 12's left path: V0 -> V1 (via S) -> V2 (via T), still alive."""
        eve = self._eve(w1=0.7, w2=0.3)
        eve.space.delete_attribute("R", "A")
        assert eve.is_alive("V0")
        assert eve.vkb.current("V0").relation_names in (("S",), ("T",))
        survivor = eve.vkb.current("V0").relation_names[0]
        eve.space.delete_relation(survivor)
        assert eve.is_alive("V0")
        other = "T" if survivor == "S" else "S"
        assert eve.vkb.current("V0").relation_names == (other,)
        assert eve.generations("V0") == 2

    def test_nonreplaceable_branch_dies_at_next_change(self):
        """Fig. 12's right path: w2 > w1 chooses V3; the next change kills it."""
        eve = self._eve(w1=0.3, w2=0.7)
        eve.space.delete_attribute("R", "A")
        assert eve.is_alive("V0")
        assert eve.vkb.current("V0").relation_names == ("R",)
        assert eve.vkb.current("V0").interface == ("B",)
        # B is non-replaceable; when R disappears there is no way out.
        eve.space.delete_relation("R")
        assert not eve.is_alive("V0")

    def test_default_weights_maximize_survival(self):
        """The paper's conclusion: the default w1 > w2 keeps views alive
        longer than the inverted weighting under the same change stream."""
        replaceable_first = self._eve(w1=0.7, w2=0.3)
        nonreplaceable_first = self._eve(w1=0.3, w2=0.7)
        for eve in (replaceable_first, nonreplaceable_first):
            eve.space.delete_attribute("R", "A")
            # The same second change for both: the chosen carrier vanishes.
            carrier = eve.vkb.current("V0").relation_names[0]
            eve.space.delete_relation(carrier)
        assert replaceable_first.is_alive("V0")
        assert not nonreplaceable_first.is_alive("V0")
