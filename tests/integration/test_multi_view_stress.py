"""System stress: many views, one evolving space, mixed event stream.

Invariants checked after every event:

* every alive materialized view's extent equals recomputation;
* dead views stay dead and are never touched again;
* the MKB stays consistent;
* every committed rewriting in every view's history is legal.
"""

import random

import pytest

from repro.core.eve import EVESystem
from repro.esql.evaluator import evaluate_view
from repro.misd.statistics import RelationStatistics
from repro.sync.legality import check_legality
from repro.workloadgen.generator import make_schema, populate_relation

SEED = 99
KEY_SPACE = 30


@pytest.fixture
def eve():
    system = EVESystem()
    layout = {
        "IS0": ["Base0"],
        "IS1": ["Base1", "Extra1"],
        "IS2": ["Base2"],
        "IS3": ["Mirror0"],
    }
    for source, names in layout.items():
        system.add_source(source)
        for name in names:
            relation = populate_relation(
                make_schema(name, ["A", "B"]), 25,
                seed=SEED, key_space=KEY_SPACE,
            )
            system.register_relation(
                source, relation, RelationStatistics(cardinality=25)
            )
    # Mirror0 replicates Base0.
    mirror = system.space.relation("Mirror0")
    mirror.replace_rows(system.space.relation("Base0").rows)
    system.mkb.add_equivalence("Base0", "Mirror0", ["A", "B"])
    return system


VIEWS = [
    # Survives Base0 loss via the mirror.
    """CREATE VIEW V_join (VE = '~') AS
       SELECT Base0.A (AR = true), Base1.B AS B1 (AD = true, AR = true)
       FROM Base0 (RR = true), Base1
       WHERE (Base0.A = Base1.A) (CR = true)""",
    # Dies with Base2 (nothing replaces it).
    """CREATE VIEW V_doomed AS
       SELECT Base2.A, Base2.B FROM Base2""",
    # Unaffected by everything below.
    """CREATE VIEW V_stable AS
       SELECT Extra1.A, Extra1.B FROM Extra1 WHERE Extra1.B > 3""",
]


def check_invariants(eve):
    for record in eve.vkb.alive_views():
        extent = eve.extent(record.name)
        recomputed = evaluate_view(record.current, eve.space.relations())
        assert sorted(extent.rows) == sorted(recomputed.rows), record.name
        for rewriting in record.history:
            assert check_legality(rewriting).legal
    assert eve.mkb.check_consistency() == []


class TestMixedStream:
    def test_full_scenario(self, eve):
        rng = random.Random(SEED)
        for view in VIEWS:
            eve.define_view(view)
        check_invariants(eve)

        # Phase 1: data churn on every relation.
        for _ in range(30):
            name = rng.choice(["Base0", "Base1", "Base2", "Extra1"])
            row = (rng.randrange(KEY_SPACE), rng.randrange(KEY_SPACE))
            eve.space.insert(name, row)
            if name == "Base0":
                eve.space.insert("Mirror0", row)
            check_invariants(eve)

        # Phase 2: capability changes.
        eve.space.delete_relation("Base0")
        assert eve.is_alive("V_join")
        assert "Mirror0" in eve.vkb.current("V_join").relation_names
        check_invariants(eve)

        eve.space.delete_relation("Base2")
        assert not eve.is_alive("V_doomed")
        assert eve.is_alive("V_stable")
        check_invariants(eve)

        # Phase 3: churn continues against the rewritten view.
        for _ in range(15):
            name = rng.choice(["Mirror0", "Base1", "Extra1"])
            row = (rng.randrange(KEY_SPACE), rng.randrange(KEY_SPACE))
            eve.space.insert(name, row)
            check_invariants(eve)

        # Further changes never resurrect or disturb the dead view.
        assert not eve.is_alive("V_doomed")
        assert eve.generations("V_join") == 1
        assert eve.generations("V_stable") == 0

    def test_rename_storm(self, eve):
        for view in VIEWS:
            eve.define_view(view)
        eve.space.rename_attribute("Base1", "B", "Beta")
        eve.space.rename_relation("Extra1", "Extra1X")
        eve.space.rename_attribute("Extra1X", "B", "Bee")
        check_invariants(eve)
        # Interfaces are stable across renames (aliases pin output names).
        assert eve.vkb.current("V_join").interface == ("A", "B1")
        assert eve.vkb.current("V_stable").interface == ("A", "B")
        assert eve.generations("V_join") == 1
        assert eve.generations("V_stable") == 2
