"""Unit tests for relation instances (bag semantics + mutation)."""

import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema


@pytest.fixture
def r():
    return Relation(Schema("R", ["A", "B"]), [(1, 2), (3, 4), (1, 2)])


class TestConstruction:
    def test_rows_validated_on_insert(self, r):
        assert r.cardinality == 3

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation(Schema("R", ["A"]), [(1, 2)])

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeMismatchError):
            Relation(Schema("R", ["A"]), [("nope",)])

    def test_from_named_rows_fills_none(self):
        relation = Relation.from_named_rows(
            Schema("R", ["A", "B"]), [{"A": 1}, {"B": 2, "A": 3}]
        )
        assert relation.rows == [(1, None), (3, 2)]

    def test_empty_like(self, r):
        empty = r.empty_like()
        assert empty.cardinality == 0
        assert empty.schema == r.schema


class TestIntrospection:
    def test_value_by_attribute(self, r):
        assert r.value((1, 2), "B") == 2

    def test_named_row(self, r):
        assert r.named_row((1, 2)) == {"A": 1, "B": 2}

    def test_row_set_deduplicates(self, r):
        assert len(r.row_set()) == 2

    def test_byte_size(self, r):
        assert r.byte_size() == 3 * 8  # two 4-byte ints per tuple

    def test_bag_equality(self):
        a = Relation(Schema("R", ["A"]), [(1,), (2,)])
        b = Relation(Schema("R", ["A"]), [(2,), (1,)])
        assert a == b

    def test_bag_inequality_with_duplicates(self):
        a = Relation(Schema("R", ["A"]), [(1,), (1,)])
        b = Relation(Schema("R", ["A"]), [(1,)])
        assert a != b

    def test_unhashable(self, r):
        with pytest.raises(TypeError):
            hash(r)


class TestMutation:
    def test_insert_returns_validated_tuple(self, r):
        assert r.insert([5, 6]) == (5, 6)
        assert r.cardinality == 4

    def test_insert_many_counts(self, r):
        assert r.insert_many([(7, 8), (9, 10)]) == 2

    def test_delete_removes_one_occurrence(self, r):
        assert r.delete((1, 2)) is True
        assert r.rows.count((1, 2)) == 1

    def test_delete_missing_returns_false(self, r):
        assert r.delete((99, 99)) is False

    def test_delete_where(self, r):
        removed = r.delete_where(lambda row: row[0] == 1)
        assert removed == [(1, 2), (1, 2)]
        assert r.cardinality == 1

    def test_replace_rows_atomic_on_failure(self, r):
        before = list(r.rows)
        with pytest.raises(TypeMismatchError):
            r.replace_rows([(1, 2), ("bad", 3)])
        assert r.rows == before

    def test_clear(self, r):
        r.clear()
        assert not r


class TestSchemaEvolution:
    def test_drop_attribute_removes_column(self, r):
        evolved = r.with_schema_dropped_attribute("A")
        assert evolved.schema.attribute_names == ("B",)
        assert evolved.rows == [(2,), (4,), (2,)]

    def test_add_attribute_with_default(self, r):
        evolved = r.with_added_attribute(Attribute("C"), default=0)
        assert evolved.rows[0] == (1, 2, 0)

    def test_rename_attribute_keeps_rows(self, r):
        evolved = r.with_renamed_attribute("A", "X")
        assert evolved.schema.attribute_names == ("X", "B")
        assert evolved.rows == r.rows

    def test_rename_relation(self, r):
        assert r.with_renamed_relation("S").name == "S"


class TestDerivations:
    def test_distinct_preserves_first_order(self, r):
        assert r.distinct().rows == [(1, 2), (3, 4)]

    def test_copy_is_independent(self, r):
        duplicate = r.copy()
        duplicate.insert((9, 9))
        assert r.cardinality == 3

    def test_copy_renames(self, r):
        assert r.copy("S").name == "S"
