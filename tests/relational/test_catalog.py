"""Unit tests for relation catalogs."""

import pytest

from repro.errors import UnknownRelationError, WorkspaceError
from repro.relational.catalog import Catalog
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema


@pytest.fixture
def catalog():
    c = Catalog(owner="test")
    c.add(Relation(Schema("R", ["A", "B"]), [(1, 2)]))
    c.add(Relation(Schema("S", ["X"]), [(9,)]))
    return c


class TestRegistration:
    def test_add_and_get(self, catalog):
        assert catalog.get("R").cardinality == 1

    def test_duplicate_rejected(self, catalog):
        with pytest.raises(WorkspaceError):
            catalog.add(Relation(Schema("R", ["A"])))

    def test_unknown_lookup(self, catalog):
        with pytest.raises(UnknownRelationError):
            catalog.get("Z")

    def test_add_empty(self, catalog):
        empty = catalog.add_empty(Schema("T", ["A"]))
        assert empty.cardinality == 0
        assert "T" in catalog

    def test_remove(self, catalog):
        removed = catalog.remove("S")
        assert removed.name == "S"
        assert "S" not in catalog

    def test_relation_names_and_len(self, catalog):
        assert set(catalog.relation_names) == {"R", "S"}
        assert len(catalog) == 2


class TestSchemaEvolution:
    def test_rename_relation(self, catalog):
        catalog.rename_relation("R", "R2")
        assert "R" not in catalog
        assert catalog.get("R2").rows == [(1, 2)]

    def test_rename_collision_rejected(self, catalog):
        with pytest.raises(WorkspaceError):
            catalog.rename_relation("R", "S")

    def test_drop_attribute_updates_in_place(self, catalog):
        catalog.drop_attribute("R", "A")
        assert catalog.get("R").schema.attribute_names == ("B",)
        assert catalog.get("R").rows == [(2,)]

    def test_add_attribute_with_default(self, catalog):
        catalog.add_attribute("R", Attribute("C"), default=7)
        assert catalog.get("R").rows == [(1, 2, 7)]

    def test_rename_attribute(self, catalog):
        catalog.rename_attribute("R", "B", "B2")
        assert catalog.get("R").schema.attribute_names == ("A", "B2")
