"""Unit tests for hash indexes and their ownership by relations."""

import pytest

from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture
def relation():
    return Relation(
        Schema("R", ["A", "B"]),
        [(1, 10), (2, 20), (1, 11), (None, 30)],
    )


class TestHashIndex:
    def test_probe_returns_matching_rows_in_order(self, relation):
        index = HashIndex((0,), relation.rows)
        assert list(index.probe((1,))) == [(1, 10), (1, 11)]
        assert list(index.probe((2,))) == [(2, 20)]

    def test_probe_misses_are_empty(self, relation):
        index = HashIndex((0,), relation.rows)
        assert list(index.probe((99,))) == []

    def test_null_keys_never_match(self, relation):
        # The None row is stored, but a None probe finds nothing (SQL NULL).
        index = HashIndex((0,), relation.rows)
        assert len(index) == 4
        assert list(index.probe((None,))) == []

    def test_composite_key(self, relation):
        index = HashIndex((0, 1), relation.rows)
        assert list(index.probe((1, 11))) == [(1, 11)]
        assert list(index.probe((1, 99))) == []

    def test_add_and_discard(self):
        index = HashIndex((0,))
        index.add((5, 1))
        index.add((5, 1))
        assert list(index.probe((5,))) == [(5, 1), (5, 1)]
        assert index.discard((5, 1))
        assert list(index.probe((5,))) == [(5, 1)]
        assert index.discard((5, 1))
        assert not index.discard((5, 1))
        assert index.distinct_keys == 0


class TestRelationOwnedIndexes:
    def test_lazy_build_and_reuse(self, relation):
        assert relation.index_count == 0
        first = relation.index_on(["A"])
        second = relation.index_on(["A"])
        assert first is second  # cached, not rebuilt
        assert relation.index_count == 1

    def test_insert_maintains_built_indexes(self, relation):
        index = relation.index_on(["A"])
        relation.insert((1, 12))
        assert list(index.probe((1,))) == [(1, 10), (1, 11), (1, 12)]

    def test_delete_maintains_built_indexes(self, relation):
        index = relation.index_on(["A"])
        assert relation.delete((1, 10))
        assert list(index.probe((1,))) == [(1, 11)]

    def test_bulk_mutations_invalidate(self, relation):
        relation.index_on(["A"])
        relation.delete_where(lambda row: row[0] == 1)
        assert relation.index_count == 0
        index = relation.index_on(["A"])
        assert list(index.probe((1,))) == []
        relation.replace_rows([(7, 70)])
        assert relation.index_count == 0
        relation.index_on(["B"])
        relation.clear()
        assert relation.index_count == 0

    def test_cached_index_count_is_bounded(self):
        wide = Relation(
            Schema("W", [f"A{i}" for i in range(12)]),
            [tuple(range(12))],
        )
        for i in range(12):
            wide.index_on([f"A{i}"])
        assert wide.index_count <= Relation.MAX_CACHED_INDEXES
        # Survivors are still correct after the churn.
        assert list(wide.index_on(["A11"]).probe((11,))) == [tuple(range(12))]

    def test_index_on_unknown_attribute_raises(self, relation):
        from repro.errors import UnknownAttributeError

        with pytest.raises(UnknownAttributeError):
            relation.index_on(["Z"])


class TestCounterBagEquality:
    def test_bag_semantics_respects_multiplicity(self):
        schema = Schema("R", ["A"])
        assert Relation(schema, [(1,), (1,)]) != Relation(schema, [(1,)])
        assert Relation(schema, [(1,), (2,)]) == Relation(schema, [(2,), (1,)])

    def test_order_and_nulls_do_not_matter(self):
        schema = Schema("R", ["A", "B"])
        left = Relation(schema, [(None, 1), (2, None), (2, None)])
        right = Relation(schema, [(2, None), (None, 1), (2, None)])
        assert left == right
        assert left != Relation(schema, [(None, 1), (2, None)])

    def test_schema_names_must_match(self):
        left = Relation(Schema("R", ["A"]), [(1,)])
        right = Relation(Schema("R", ["B"]), [(1,)])
        assert left != right
