"""Unit tests for the columnar storage layer and column kernels."""

from array import array

import pytest

from repro.errors import EvaluationError
from repro.esql.parser import parse_view
from repro.relational.columnar import (
    ColumnStore,
    KernelCounters,
    probe_positions,
    typed_column,
)
from repro.relational.compile import (
    compile_clause_kernel,
    compile_clauses_kernel,
    schema_slots,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType


def clauses_of(text):
    view = parse_view(f"CREATE VIEW V AS SELECT R.A FROM R WHERE {text}")
    return [item.clause for item in view.where]


class TestTypedColumn:
    def test_int_column_becomes_array(self):
        column = typed_column(AttributeType.INT, [1, 2, 3])
        assert isinstance(column, array)
        assert column.typecode == "q"
        assert list(column) == [1, 2, 3]

    def test_float_column_becomes_array(self):
        column = typed_column(AttributeType.FLOAT, [1.5, 2.5])
        assert isinstance(column, array)
        assert column.typecode == "d"

    def test_null_keeps_list(self):
        values = [1, None, 3]
        assert typed_column(AttributeType.INT, values) is values

    def test_huge_int_keeps_list(self):
        values = [2**70]
        assert typed_column(AttributeType.INT, values) is values

    def test_string_and_bool_stay_lists(self):
        strings = ["a", "b"]
        bools = [True, False]
        assert typed_column(AttributeType.STRING, strings) is strings
        # BOOL in an array would coerce to 0/1 ints and break validation.
        assert typed_column(AttributeType.BOOL, bools) is bools


class TestColumnStore:
    def test_transposes_rows(self):
        store = ColumnStore(Schema("R", ["A", "B"]), [(1, 2), (3, 4)])
        assert store.length == 2
        assert list(store.columns[0]) == [1, 3]
        assert list(store.columns[1]) == [2, 4]

    def test_empty(self):
        store = ColumnStore(Schema("R", ["A", "B"]))
        assert store.length == 0
        assert [list(c) for c in store.columns] == [[], []]

    def test_append_keeps_arrays(self):
        store = ColumnStore(Schema("R", ["A", "B"]), [(1, 2)])
        store.append((3, 4))
        assert isinstance(store.columns[0], array)
        assert list(store.columns[0]) == [1, 3]

    def test_append_null_downgrades_to_list(self):
        store = ColumnStore(Schema("R", ["A", "B"]), [(1, 2)])
        store.append((None, 4))
        assert isinstance(store.columns[0], list)
        assert store.columns[0] == [1, None]
        assert isinstance(store.columns[1], array)

    def test_position_index_preserves_insertion_order(self):
        store = ColumnStore(Schema("R", ["A", "B"]), [(1, 0), (2, 0), (1, 1)])
        index = store.position_index((0,))
        # Any duplicate key switches the whole index to list buckets.
        assert index == {1: [0, 2], 2: [1]}

    def test_position_index_skips_null_components(self):
        schema = Schema("R", ["A", "B"])
        store = ColumnStore(schema, [(1, None), (None, 2), (1, 2)])
        assert store.position_index((0,)) == {1: [0, 2]}
        assert store.position_index((0, 1)) == {(1, 2): 2}

    def test_append_maintains_cached_indexes(self):
        store = ColumnStore(Schema("R", ["A", "B"]), [(1, 0)])
        single = store.position_index((0,))
        multi = store.position_index((0, 1))
        store.append((1, 5))
        store.append((None, 6))
        assert single == {1: [0, 1]}
        assert multi == {(1, 0): 0, (1, 5): 1}

    def test_index_cache_fifo_eviction(self):
        schema = Schema("R", [f"A{i}" for i in range(10)])
        store = ColumnStore(schema, [tuple(range(10))])
        for i in range(ColumnStore.MAX_CACHED_INDEXES + 1):
            store.position_index((i,))
        assert len(store._position_indexes) == ColumnStore.MAX_CACHED_INDEXES
        assert (0,) not in store._position_indexes

    def test_relation_lifecycle(self):
        relation = Relation(Schema("R", ["A", "B"]), [(1, 2)])
        store = relation.column_store()
        assert relation.column_store() is store
        relation.insert((3, 4))
        assert store.length == 2
        relation.delete((1, 2))
        assert relation.column_store() is not store
        assert relation.column_store().length == 1


class TestProbePositions:
    def test_incoming_major_bucket_order(self):
        index = {1: [0, 2], 2: [1]}
        left, right = probe_positions([[2, 1, 3]], index)
        assert left == [0, 1, 1]
        assert right == [1, 0, 2]

    def test_null_keys_miss(self):
        left, right = probe_positions([[None, 1]], {1: [0]})
        assert (left, right) == ([1], [0])

    def test_int_buckets_from_store_index(self):
        store = ColumnStore(Schema("R", ["A", "B"]), [(1, 0), (2, 0), (1, 1)])
        left, right = probe_positions(
            [[2, 1]], store.position_index((0,))
        )
        assert (left, right) == ([0, 1, 1], [1, 0, 2])

    def test_multi_column_keys(self):
        index = {(1, 2): [3]}
        left, right = probe_positions([[1, 1], [2, 9]], index)
        assert (left, right) == ([0], [3])

    def test_records_counters(self):
        counters = KernelCounters()
        probe_positions([[1, 1, 2]], {1: [0, 5]}, counters)
        assert counters.rows_scanned == 3
        assert counters.rows_selected == 4  # probes fan out past 1:1


class TestColumnKernels:
    def test_attr_const_kernel(self):
        slots = schema_slots(Schema("R", ["A", "B"]))
        (clause,) = clauses_of("R.B > 2")
        kernel, used = compile_clause_kernel(clause, slots)
        columns = [[9, 9, 9], [1, 5, None]]
        assert kernel(columns, range(3)) == [1]
        assert used == {1}

    def test_attr_attr_kernel_null_never_matches(self):
        slots = schema_slots(Schema("R", ["A", "B"]))
        (clause,) = clauses_of("R.A = R.B")
        kernel, used = compile_clause_kernel(clause, slots)
        columns = [[1, None, 3], [1, None, 4]]
        assert kernel(columns, range(3)) == [0]
        assert used == {0, 1}

    def test_unresolved_kernel_raises_only_on_rows(self):
        (clause,) = clauses_of("R.A = 1")
        kernel, used = compile_clause_kernel(clause, {"R.B": 0})
        assert used == frozenset()
        assert kernel([[1]], []) == []
        with pytest.raises(EvaluationError):
            kernel([[1]], [0])

    def test_filter_narrows_in_clause_order_and_counts(self):
        slots = schema_slots(Schema("R", ["A", "B"]))
        clauses = clauses_of("R.A > 0 AND R.B < 10")
        column_filter = compile_clauses_kernel(clauses, slots)
        assert column_filter.slots == {0, 1}
        counters = KernelCounters()
        columns = [[0, 1, 2], [3, 99, 4]]
        assert column_filter(columns, range(3), counters) == [2]
        # First kernel scans 3 keeps 2; second scans 2 keeps 1.
        assert counters.snapshot() == (5, 3)

    def test_empty_filter_passes_selection_through(self):
        column_filter = compile_clauses_kernel([], {})
        selection = [0, 2]
        assert column_filter([], selection) == selection


class TestKernelCounters:
    def test_snapshot_diff_merge_round_trip(self):
        counters = KernelCounters()
        counters.record(10, 4)
        snapshot = counters.snapshot()
        counters.record(5, 1)
        delta = counters.diff(snapshot)
        assert delta == KernelCounters(5, 1)
        assert delta.merged(KernelCounters(10, 4)) == counters
        assert counters.as_dict() == {
            "rows_scanned": 15,
            "rows_selected": 5,
        }

    def test_typed_columns_round_trip_through_store(self):
        schema = Schema(
            "R",
            [
                Attribute("A"),
                Attribute("B", AttributeType.STRING),
                Attribute("C", AttributeType.FLOAT),
            ],
        )
        rows = [(1, "x", 1.5), (2, "y", 2.5)]
        store = ColumnStore(schema, rows)
        assert list(zip(*store.columns)) == rows
