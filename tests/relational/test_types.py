"""Unit tests for attribute domain types."""

import pytest

from repro.errors import TypeMismatchError
from repro.relational.types import AttributeType, infer_type


class TestValidation:
    def test_int_accepts_int(self):
        assert AttributeType.INT.validate(42) == 42

    def test_int_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.INT.validate(True)

    def test_int_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.INT.validate("42")

    def test_float_coerces_int(self):
        value = AttributeType.FLOAT.validate(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_accepts_float(self):
        assert AttributeType.FLOAT.validate(2.5) == 2.5

    def test_float_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.FLOAT.validate(False)

    def test_string_accepts_str(self):
        assert AttributeType.STRING.validate("abc") == "abc"

    def test_string_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.STRING.validate(7)

    def test_bool_accepts_bool(self):
        assert AttributeType.BOOL.validate(True) is True

    def test_bool_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            AttributeType.BOOL.validate(1)

    def test_none_passes_through_every_type(self):
        for attribute_type in AttributeType:
            assert attribute_type.validate(None) is None


class TestComparability:
    def test_numeric_tower_is_comparable(self):
        assert AttributeType.INT.is_comparable_with(AttributeType.FLOAT)
        assert AttributeType.FLOAT.is_comparable_with(AttributeType.INT)

    def test_same_type_is_comparable(self):
        for attribute_type in AttributeType:
            assert attribute_type.is_comparable_with(attribute_type)

    def test_string_not_comparable_with_int(self):
        assert not AttributeType.STRING.is_comparable_with(AttributeType.INT)

    def test_bool_not_comparable_with_int(self):
        assert not AttributeType.BOOL.is_comparable_with(AttributeType.INT)


class TestDefaults:
    def test_default_sizes(self):
        assert AttributeType.INT.default_size == 4
        assert AttributeType.FLOAT.default_size == 8
        assert AttributeType.STRING.default_size == 20
        assert AttributeType.BOOL.default_size == 1

    def test_labels(self):
        assert AttributeType.INT.label == "int"
        assert AttributeType.STRING.label == "string"


class TestInference:
    def test_infer_int(self):
        assert infer_type(3) is AttributeType.INT

    def test_infer_bool_before_int(self):
        assert infer_type(True) is AttributeType.BOOL

    def test_infer_float(self):
        assert infer_type(2.5) is AttributeType.FLOAT

    def test_infer_string(self):
        assert infer_type("x") is AttributeType.STRING

    def test_infer_rejects_none(self):
        with pytest.raises(TypeMismatchError):
            infer_type(None)

    def test_infer_rejects_list(self):
        with pytest.raises(TypeMismatchError):
            infer_type([1, 2])
