"""Unit tests for relational algebra operators, including the Fig. 7 set
operators on the common subset of attributes."""

import pytest

from repro.errors import SchemaError
from repro.relational.algebra import (
    cartesian_product,
    common_projection,
    cs_difference,
    cs_equal,
    cs_intersection,
    cs_subset,
    difference,
    intersection,
    join,
    natural_equijoin,
    project,
    rename,
    select,
    union,
)
from repro.relational.expressions import (
    AttributeRef,
    Comparator,
    Condition,
    Constant,
    PrimitiveClause,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema


def rel(name, attrs, rows):
    return Relation(Schema(name, list(attrs)), rows)


@pytest.fixture
def r():
    return rel("R", "AB", [(1, 10), (2, 20), (3, 30)])


@pytest.fixture
def s():
    return rel("S", "AC", [(1, 100), (2, 200), (9, 900)])


def eq_clause(left_rel, left_attr, right_rel, right_attr):
    return PrimitiveClause(
        AttributeRef(left_attr, left_rel),
        Comparator.EQ,
        AttributeRef(right_attr, right_rel),
    )


class TestSelect:
    def test_select_with_condition(self, r):
        condition = Condition.of(
            PrimitiveClause(AttributeRef("A", "R"), Comparator.GT, Constant(1))
        )
        result = select(r, condition)
        assert result.rows == [(2, 20), (3, 30)]

    def test_select_with_callable(self, r):
        result = select(r, lambda row: row["B"] == 20)
        assert result.rows == [(2, 20)]

    def test_select_true_keeps_everything(self, r):
        assert select(r, Condition.true()).cardinality == 3

    def test_select_renames(self, r):
        assert select(r, Condition.true(), new_name="R2").name == "R2"


class TestProject:
    def test_project_bag_keeps_duplicates(self):
        relation = rel("R", "AB", [(1, 1), (1, 2)])
        assert project(relation, ["A"]).rows == [(1,), (1,)]

    def test_project_distinct(self):
        relation = rel("R", "AB", [(1, 1), (1, 2)])
        assert project(relation, ["A"], distinct=True).rows == [(1,)]

    def test_project_reorders(self, r):
        result = project(r, ["B", "A"])
        assert result.rows[0] == (10, 1)

    def test_rename_attributes(self, r):
        renamed = rename(r, {"A": "X"}, new_name="R2")
        assert renamed.schema.attribute_names == ("X", "B")
        assert renamed.name == "R2"


class TestJoin:
    def test_cartesian_product_size(self, r, s):
        assert cartesian_product(r, s).cardinality == 9

    def test_equijoin_hash_path(self, r, s):
        condition = Condition.of(eq_clause("R", "A", "S", "A"))
        result = join(r, s, condition)
        assert sorted(result.rows) == [(1, 10, 1, 100), (2, 20, 2, 200)]

    def test_theta_join_fallback(self, r, s):
        condition = Condition.of(
            PrimitiveClause(
                AttributeRef("A", "R"), Comparator.LT, AttributeRef("A", "S")
            )
        )
        result = join(r, s, condition)
        # every R row joins with S rows having larger A
        assert (1, 10, 2, 200) in result.rows
        assert (3, 30, 9, 900) in result.rows
        assert (2, 20, 1, 100) not in result.rows

    def test_join_with_true_condition_is_product(self, r, s):
        assert join(r, s, Condition.true()).cardinality == 9

    def test_natural_equijoin_helper(self, r, s):
        result = natural_equijoin(r, s, [("A", "A")])
        assert result.cardinality == 2

    def test_join_skips_null_keys(self, s):
        left = rel("R", "AB", [(None, 1), (1, 2)])
        result = natural_equijoin(left, s, [("A", "A")])
        assert result.cardinality == 1

    def test_join_qualifies_clashing_attributes(self, r):
        other = rel("T", "AB", [(1, 99)])
        result = join(r, other, Condition.of(eq_clause("R", "A", "T", "A")))
        assert result.schema.attribute_names == ("A", "B", "T_A", "T_B")


class TestSetOperators:
    def test_union_distinct(self):
        a = rel("R", "A", [(1,), (2,)])
        b = rel("S", "A", [(2,), (3,)])
        assert sorted(union(a, b).rows) == [(1,), (2,), (3,)]

    def test_union_bag(self):
        a = rel("R", "A", [(1,)])
        b = rel("S", "A", [(1,)])
        assert union(a, b, distinct=False).cardinality == 2

    def test_difference(self):
        a = rel("R", "A", [(1,), (2,), (2,)])
        b = rel("S", "A", [(2,)])
        assert difference(a, b).rows == [(1,)]

    def test_intersection(self):
        a = rel("R", "A", [(1,), (2,)])
        b = rel("S", "A", [(2,), (3,)])
        assert intersection(a, b).rows == [(2,)]

    def test_arity_mismatch_rejected(self):
        a = rel("R", "A", [(1,)])
        b = rel("S", "AB", [(1, 2)])
        with pytest.raises(SchemaError):
            union(a, b)


class TestCommonSubsetOperators:
    """The Fig. 7 operators, on the paper's Fig. 5 data."""

    @pytest.fixture
    def v(self):
        # Original view V(A,B,C,D) of Fig. 5(b).
        return rel(
            "V",
            "ABCD",
            [
                (1, 1, 9, 5), (1, 1, 9, 0), (1, 2, 6, 1),
                (2, 2, 6, 3), (2, 2, 3, 2), (2, 3, 1, 4),
                (3, 3, 7, 6), (3, 6, 9, 1), (9, 6, 5, 3),
            ],
        )

    @pytest.fixture
    def v1(self):
        # Rewriting V1(A,B) of Fig. 5(c).
        return rel(
            "V1", "AB",
            [(1, 1), (1, 2), (2, 2), (2, 3), (3, 6), (6, 8), (2, 1), (1, 2)],
        )

    def test_common_projection_attributes(self, v, v1):
        assert common_projection(v, v1).schema.attribute_names == ("A", "B")

    def test_common_projection_requires_shared_attributes(self):
        a = rel("R", "A", [(1,)])
        b = rel("S", "B", [(1,)])
        with pytest.raises(SchemaError):
            common_projection(a, b)

    def test_cs_intersection_counts_shared_projected_tuples(self, v, v1):
        shared = cs_intersection(v, v1)
        assert set(shared.rows) >= {(1, 1), (2, 2), (2, 3)}

    def test_cs_difference(self, v, v1):
        missing = cs_difference(v, v1)  # V tuples V1 lost
        surplus = cs_difference(v1, v)  # V1 tuples not in V
        assert (6, 8) in surplus.rows
        assert (9, 6) in missing.rows

    def test_cs_equal_on_identical_projections(self):
        a = rel("R", "AB", [(1, 2), (3, 4)])
        b = rel("S", "AC", [(1, 9), (3, 9)])
        assert cs_equal(a, b)

    def test_cs_subset(self):
        a = rel("R", "A", [(1,)])
        b = rel("S", "AB", [(1, 0), (2, 0)])
        assert cs_subset(a, b)
        assert not cs_subset(b, a)

    def test_duplicates_removed_before_comparison(self):
        a = rel("R", "A", [(1,), (1,)])
        b = rel("S", "A", [(1,)])
        assert cs_equal(a, b)
