"""Unit tests for predicate expressions (clauses and conditions)."""

import pytest

from repro.errors import EvaluationError
from repro.relational.expressions import (
    AttributeRef,
    Comparator,
    Condition,
    Constant,
    PrimitiveClause,
)


def clause(left, op, right):
    return PrimitiveClause(left, Comparator.from_symbol(op), right)


A = AttributeRef("A", "R")
B = AttributeRef("B", "S")
BARE = AttributeRef("X")


class TestComparator:
    @pytest.mark.parametrize(
        "symbol,left,right,expected",
        [
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            ("=", 3, 3, True),
            (">=", 2, 3, False),
            (">", 5, 4, True),
            ("<>", 1, 1, False),
        ],
    )
    def test_apply(self, symbol, left, right, expected):
        assert Comparator.from_symbol(symbol).apply(left, right) is expected

    def test_none_never_satisfies(self):
        for comparator in Comparator:
            assert comparator.apply(None, 1) is False
            assert comparator.apply(1, None) is False

    def test_flipped_inverts_direction(self):
        assert Comparator.LT.flipped() is Comparator.GT
        assert Comparator.LE.flipped() is Comparator.GE
        assert Comparator.EQ.flipped() is Comparator.EQ

    def test_unknown_symbol(self):
        with pytest.raises(EvaluationError):
            Comparator.from_symbol("!=")


class TestAttributeRef:
    def test_qualified_rendering(self):
        assert str(A) == "R.A"
        assert str(BARE) == "X"

    def test_matches_unqualified_any_relation(self):
        assert BARE.matches("X", "Anything")

    def test_matches_qualified_same_relation_only(self):
        assert A.matches("A", "R")
        assert not A.matches("A", "S")
        assert A.matches("A")  # lookup that does not care

    def test_requalified(self):
        assert A.requalified("T") == AttributeRef("A", "T")

    def test_renamed(self):
        assert A.renamed("Z") == AttributeRef("Z", "R")


class TestPrimitiveClause:
    def test_constant_only_clause_rejected(self):
        with pytest.raises(EvaluationError):
            PrimitiveClause(Constant(1), Comparator.EQ, Constant(2))

    def test_join_clause_classification(self):
        join = clause(A, "=", B)
        assert join.is_join_clause
        assert join.is_equijoin
        assert not join.is_selection_clause

    def test_selection_clause_classification(self):
        selection = clause(A, ">", Constant(10))
        assert selection.is_selection_clause
        assert not selection.is_join_clause

    def test_relations(self):
        assert clause(A, "=", B).relations() == frozenset({"R", "S"})

    def test_evaluate_against_named_row(self):
        selection = clause(A, ">", Constant(10))
        assert selection.evaluate({"R.A": 11})
        assert not selection.evaluate({"R.A": 10})

    def test_evaluate_falls_back_to_bare_name(self):
        selection = clause(A, "=", Constant(5))
        assert selection.evaluate({"A": 5})

    def test_evaluate_missing_attribute_raises(self):
        with pytest.raises(EvaluationError):
            clause(A, "=", Constant(1)).evaluate({"B": 1})

    def test_with_relation_replaced(self):
        join = clause(A, "=", B)
        replaced = join.with_relation_replaced("R", "T")
        assert str(replaced) == "T.A = S.B"

    def test_with_relation_replaced_translates_attributes(self):
        join = clause(A, "=", B)
        replaced = join.with_relation_replaced("R", "T", {"A": "X"})
        assert str(replaced) == "T.X = S.B"

    def test_normalized_moves_constant_right(self):
        reversed_clause = clause(Constant(10), "<", A)
        assert str(reversed_clause.normalized()) == "R.A > 10"

    def test_normalized_orders_attributes(self):
        unordered = clause(B, "=", A)
        assert str(unordered.normalized()) == "R.A = S.B"


class TestCondition:
    def test_true_condition(self):
        tautology = Condition.true()
        assert tautology.is_true
        assert tautology.evaluate({})
        assert str(tautology) == "TRUE"
        assert not tautology  # truthiness = has clauses

    def test_conjunction_evaluation(self):
        condition = Condition.of(
            clause(A, ">", Constant(1)), clause(A, "<", Constant(5))
        )
        assert condition.evaluate({"R.A": 3})
        assert not condition.evaluate({"R.A": 7})

    def test_and_also(self):
        condition = Condition.true().and_also(clause(A, "=", Constant(1)))
        assert len(condition) == 1
        combined = condition.and_also(Condition.of(clause(A, ">", Constant(0))))
        assert len(combined) == 2

    def test_equality_ignores_order_and_operand_direction(self):
        c1 = Condition.of(clause(A, "=", B), clause(A, ">", Constant(1)))
        c2 = Condition.of(clause(Constant(1), "<", A), clause(B, "=", A))
        assert c1 == c2
        assert hash(c1) == hash(c2)

    def test_join_and_selection_split(self):
        condition = Condition.of(
            clause(A, "=", B), clause(A, ">", Constant(1))
        )
        assert len(condition.join_clauses()) == 1
        assert len(condition.selection_clauses()) == 1

    def test_without_clauses_referencing_attribute(self):
        condition = Condition.of(
            clause(A, "=", B), clause(B, ">", Constant(1))
        )
        pruned = condition.without_clauses_referencing("A", "R")
        assert len(pruned) == 1
        assert str(pruned.clauses[0]) == "S.B > 1"

    def test_without_clauses_referencing_relation(self):
        condition = Condition.of(
            clause(A, "=", B), clause(B, ">", Constant(1))
        )
        pruned = condition.without_clauses_referencing(relation="S")
        assert pruned.is_true

    def test_with_relation_replaced(self):
        condition = Condition.of(clause(A, "=", B))
        replaced = condition.with_relation_replaced("S", "T")
        assert str(replaced) == "(R.A = T.B)"
