"""Unit tests for schemas and attributes."""

import pytest

from repro.errors import SchemaError, UnknownAttributeError
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType


class TestAttribute:
    def test_default_type_is_int(self):
        assert Attribute("A").type is AttributeType.INT

    def test_byte_size_falls_back_to_type_default(self):
        assert Attribute("A", AttributeType.STRING).byte_size == 20

    def test_byte_size_override(self):
        assert Attribute("A", AttributeType.STRING, size=50).byte_size == 50

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")
        with pytest.raises(SchemaError):
            Attribute("bad name")

    def test_underscore_names_allowed(self):
        assert Attribute("first_name").name == "first_name"

    def test_non_positive_size_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("A", size=0)

    def test_renamed_keeps_type_and_size(self):
        original = Attribute("A", AttributeType.FLOAT, size=16)
        renamed = original.renamed("B")
        assert renamed.name == "B"
        assert renamed.type is AttributeType.FLOAT
        assert renamed.size == 16


class TestSchemaConstruction:
    def test_strings_become_attributes(self):
        schema = Schema("R", ["A", "B"])
        assert schema.attribute_names == ("A", "B")
        assert schema.arity == 2

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema("R", ["A", "A"])

    def test_iteration_and_contains(self):
        schema = Schema("R", ["A", "B"])
        assert [a.name for a in schema] == ["A", "B"]
        assert "A" in schema
        assert "Z" not in schema

    def test_equality_and_hash(self):
        a = Schema("R", ["A", "B"])
        b = Schema("R", ["A", "B"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Schema("R", ["A"])


class TestSchemaLookup:
    def test_attribute_lookup(self):
        schema = Schema("R", [Attribute("A", AttributeType.STRING)])
        assert schema.attribute("A").type is AttributeType.STRING

    def test_unknown_attribute_names_schema(self):
        schema = Schema("R", ["A"])
        with pytest.raises(UnknownAttributeError) as excinfo:
            schema.attribute("Z")
        assert "Z" in str(excinfo.value)
        assert "R" in str(excinfo.value)

    def test_position(self):
        schema = Schema("R", ["A", "B", "C"])
        assert schema.position("B") == 1

    def test_tuple_byte_size(self):
        schema = Schema(
            "R",
            [Attribute("A"), Attribute("B", AttributeType.STRING)],
        )
        assert schema.tuple_byte_size() == 24


class TestSchemaDerivation:
    def test_project_reorders(self):
        schema = Schema("R", ["A", "B", "C"])
        projected = schema.project(["C", "A"])
        assert projected.attribute_names == ("C", "A")
        assert projected.name == "R"

    def test_project_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            Schema("R", ["A"]).project(["Z"])

    def test_rename_relation(self):
        assert Schema("R", ["A"]).rename_relation("S").name == "S"

    def test_rename_attribute(self):
        schema = Schema("R", ["A", "B"]).rename_attribute("A", "X")
        assert schema.attribute_names == ("X", "B")

    def test_rename_attribute_collision_rejected(self):
        with pytest.raises(SchemaError):
            Schema("R", ["A", "B"]).rename_attribute("A", "B")

    def test_drop_attribute(self):
        schema = Schema("R", ["A", "B"]).drop_attribute("A")
        assert schema.attribute_names == ("B",)

    def test_drop_last_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Schema("R", ["A"]).drop_attribute("A")

    def test_add_attribute(self):
        schema = Schema("R", ["A"]).add_attribute(Attribute("B"))
        assert schema.attribute_names == ("A", "B")

    def test_add_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Schema("R", ["A"]).add_attribute(Attribute("A"))


class TestSchemaConcat:
    def test_concat_disjoint(self):
        joined = Schema("R", ["A"]).concat(Schema("S", ["B"]), "RS")
        assert joined.attribute_names == ("A", "B")
        assert joined.name == "RS"

    def test_concat_qualifies_clashes(self):
        joined = Schema("R", ["A", "B"]).concat(Schema("S", ["B", "C"]), "RS")
        assert joined.attribute_names == ("A", "B", "S_B", "C")

    def test_concat_unresolvable_clash_rejected(self):
        left = Schema("R", ["B", "S_B"])
        with pytest.raises(SchemaError):
            left.concat(Schema("S", ["B"]), "RS")

    def test_common_attributes_in_left_order(self):
        left = Schema("R", ["A", "B", "C"])
        right = Schema("S", ["C", "A"])
        assert left.common_attributes(right) == ("A", "C")

    def test_common_attributes_empty(self):
        assert Schema("R", ["A"]).common_attributes(Schema("S", ["B"])) == ()
