"""Unit tests for the view-definition AST and its derivation methods."""

import pytest

from repro.errors import SchemaError
from repro.esql.ast import FromItem, SelectItem, ViewDefinition, WhereItem
from repro.esql.params import AttributeCategory, ViewExtent
from repro.esql.parser import parse_view
from repro.relational.expressions import (
    AttributeRef,
    Comparator,
    Constant,
    PrimitiveClause,
)


@pytest.fixture
def view():
    return parse_view(
        """
        CREATE VIEW V (VE = '~') AS
        SELECT R.A (AD = true, AR = true), R.B (AD = true), S.C
        FROM R (RD = true, RR = true), S
        WHERE (R.A = S.A) (CD = true, CR = true) AND (S.C > 5)
        """
    )


class TestConstructionInvariants:
    def test_empty_select_rejected(self):
        with pytest.raises(SchemaError):
            ViewDefinition("V", [], [FromItem("R")])

    def test_empty_from_rejected(self):
        with pytest.raises(SchemaError):
            ViewDefinition("V", [SelectItem(AttributeRef("A"))], [])

    def test_duplicate_output_rejected(self):
        items = [
            SelectItem(AttributeRef("A", "R")),
            SelectItem(AttributeRef("A", "S")),
        ]
        with pytest.raises(SchemaError):
            ViewDefinition("V", items, [FromItem("R"), FromItem("S")])

    def test_duplicate_from_rejected(self):
        with pytest.raises(SchemaError):
            ViewDefinition(
                "V",
                [SelectItem(AttributeRef("A"))],
                [FromItem("R"), FromItem("R")],
            )


class TestIntrospection:
    def test_interface(self, view):
        assert view.interface == ("A", "B", "C")

    def test_condition_combines_where(self, view):
        assert len(view.condition()) == 2

    def test_select_items_from(self, view):
        assert len(view.select_items_from("R")) == 2
        assert len(view.select_items_from("S")) == 1

    def test_where_items_on(self, view):
        assert len(view.where_items_on("R")) == 1
        assert len(view.where_items_on("S")) == 2

    def test_categories(self, view):
        buckets = view.categories()
        assert len(buckets[AttributeCategory.C1]) == 1  # A
        assert len(buckets[AttributeCategory.C2]) == 1  # B
        assert len(buckets[AttributeCategory.C4]) == 1  # C

    def test_lookup_errors(self, view):
        with pytest.raises(SchemaError):
            view.select_item("Z")
        with pytest.raises(SchemaError):
            view.from_item("Z")


class TestDrops:
    def test_dropping_select_item(self, view):
        smaller = view.dropping_select_item("B")
        assert smaller.interface == ("A", "C")
        # flags of survivors unchanged
        assert smaller.select_item("A").flags.dispensable

    def test_dropping_unknown_select_item(self, view):
        with pytest.raises(SchemaError):
            view.dropping_select_item("Z")

    def test_dropping_where_item(self, view):
        smaller = view.dropping_where_item(0)
        assert len(smaller.where) == 1
        assert str(smaller.where[0].clause) == "S.C > 5"

    def test_dropping_where_out_of_range(self, view):
        with pytest.raises(SchemaError):
            view.dropping_where_item(5)

    def test_dropping_relation_cascades(self, view):
        smaller = view.dropping_relation("R")
        assert smaller.relation_names == ("S",)
        assert smaller.interface == ("C",)
        assert len(smaller.where) == 1

    def test_dropping_only_relation_rejected(self):
        single = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        with pytest.raises(SchemaError):
            single.dropping_relation("R")

    def test_dropping_relation_that_feeds_all_outputs_rejected(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R, S WHERE R.A = S.A"
        )
        with pytest.raises(SchemaError):
            view.dropping_relation("R")


class TestReplacements:
    def test_replacing_relation_translates_everywhere(self, view):
        replaced = view.replacing_relation("R", "T", {"A": "X", "B": "Y"})
        assert replaced.relation_names == ("T", "S")
        # Output names pinned to the original interface.
        assert replaced.interface == ("A", "B", "C")
        a_item = replaced.select_item("A")
        assert a_item.ref == AttributeRef("X", "T")
        assert str(replaced.where[0].clause) == "T.X = S.A"

    def test_replacing_relation_keeps_flags(self, view):
        replaced = view.replacing_relation("R", "T")
        assert replaced.from_item("T").flags.replaceable
        assert replaced.select_item("A").flags.dispensable

    def test_replacing_with_existing_relation_rejected(self, view):
        with pytest.raises(SchemaError):
            view.replacing_relation("R", "S")

    def test_replacing_attribute(self, view):
        replaced = view.replacing_attribute(
            AttributeRef("A", "R"), AttributeRef("X", "T")
        )
        assert replaced.select_item("A").ref == AttributeRef("X", "T")
        assert str(replaced.where[0].clause) == "T.X = S.A"

    def test_adding_from_and_where(self, view):
        clause = PrimitiveClause(
            AttributeRef("A", "T"), Comparator.GT, Constant(0)
        )
        grown = view.adding_from_item(FromItem("T")).adding_where_items(
            [WhereItem(clause)]
        )
        assert grown.relation_names == ("R", "S", "T")
        assert len(grown.where) == 3

    def test_with_extent_parameter(self, view):
        assert (
            view.with_extent_parameter(ViewExtent.EQUAL).extent_parameter
            is ViewExtent.EQUAL
        )

    def test_renamed(self, view):
        assert view.renamed("W").name == "W"


class TestEqualityHash:
    def test_equal_views_hash_equal(self):
        a = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        b = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        assert a == b
        assert hash(a) == hash(b)

    def test_flag_difference_breaks_equality(self):
        a = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        b = parse_view("CREATE VIEW V AS SELECT R.A (AD = true) FROM R")
        assert a != b
