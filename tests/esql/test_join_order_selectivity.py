"""Local-condition selectivity in the greedy join order (ROADMAP item).

The indexed engine's greedy order used to rank relations by raw
cardinality; a large-but-heavily-filtered relation was always joined
late even when its selection leaves almost nothing.  Folding each
single-relation WHERE conjunct's sigma into the estimate lets such a
relation lead the join.
"""

import pytest

from repro.config import EngineConfig
from repro.esql.evaluator import _join_order, evaluate_view
from repro.esql.parser import parse_view
from repro.esql.validate import ViewValidator
from repro.misd.statistics import SpaceStatistics
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture
def relations():
    return {
        # Big has 300 rows but its local condition keeps almost none.
        "Big": Relation(
            Schema("Big", ["A", "F"]),
            [(i, i % 100) for i in range(300)],
        ),
        "Small": Relation(
            Schema("Small", ["A", "B"]), [(i, 2 * i) for i in range(100)]
        ),
    }


def _resolved(text, relations):
    view = parse_view(text)
    schemas = {name: relations[name].schema for name in view.relation_names}
    return ViewValidator(schemas).resolve_view(view)


VIEW = (
    "CREATE VIEW V AS SELECT Big.A, Small.B FROM Small, Big "
    "WHERE Big.A = Small.A AND Big.F = 7"
)


class TestSelectivityFoldedOrder:
    def test_statistics_selectivity_reorders_plan(self, relations):
        view = _resolved(VIEW, relations)
        statistics = SpaceStatistics()
        statistics.register_simple("Big", 300, selectivity=0.01)
        statistics.register_simple("Small", 100, selectivity=1.0)

        lookup = relations.__getitem__
        # Raw cardinality would start with Small (100 < 300); the folded
        # estimate ranks Big at 300 * 0.01 = 3 and reorders the plan.
        order = _join_order(view, lookup, statistics)
        assert order == ["Big", "Small"]

    def test_without_statistics_default_sigma_applies(self, relations):
        # Big at 300 * 0.5 = 150 still beats nothing (Small = 100), so
        # the unfiltered ordering is preserved when sigma is unknown and
        # the discount is the paper's default 0.5.
        view = _resolved(VIEW, relations)
        order = _join_order(view, relations.__getitem__, None)
        assert order == ["Small", "Big"]

    def test_default_sigma_can_still_reorder(self, relations):
        # Two local conjuncts discount Big to 300 * 0.25 = 75 < 100.
        view = _resolved(
            "CREATE VIEW V AS SELECT Big.A, Small.B FROM Small, Big "
            "WHERE Big.A = Small.A AND Big.F = 7 AND Big.F < 50",
            relations,
        )
        order = _join_order(view, relations.__getitem__, None)
        assert order == ["Big", "Small"]

    def test_reordered_plan_result_is_unchanged(self, relations):
        view = _resolved(VIEW, relations)
        statistics = SpaceStatistics()
        statistics.register_simple("Big", 300, selectivity=0.01)
        statistics.register_simple("Small", 100, selectivity=1.0)
        fast = evaluate_view(view, relations, statistics)
        reference = evaluate_view(view, relations, config=EngineConfig(engine="naive"))
        assert sorted(fast.rows) == sorted(reference.rows)

    def test_selectivity_ignored_for_join_clauses(self, relations):
        # Only single-relation, non-equijoin conjuncts count as local
        # filters; the equijoin between the two relations must not
        # discount either side.
        view = _resolved(
            "CREATE VIEW V AS SELECT Big.A, Small.B FROM Small, Big "
            "WHERE Big.A = Small.A",
            relations,
        )
        statistics = SpaceStatistics()
        statistics.register_simple("Big", 300, selectivity=0.01)
        statistics.register_simple("Small", 100, selectivity=1.0)
        order = _join_order(view, relations.__getitem__, statistics)
        assert order == ["Small", "Big"]
