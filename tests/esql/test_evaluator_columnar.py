"""Columnar evaluation plane + tuple-plane projection pushdown."""

import pytest

import repro.esql.evaluator as evaluator_module
from repro.config import EngineConfig, SystemConfig
from repro.core.eve import EVESystem
from repro.errors import ConfigurationError
from repro.esql.evaluator import _referenced_columns, evaluate_view
from repro.esql.parser import parse_view
from repro.esql.validate import ViewValidator
from repro.relational.columnar import KernelCounters
from repro.relational.relation import Relation
from repro.relational.schema import Schema


def relations():
    return {
        "R": Relation(Schema("R", ["A", "B"]), [(1, 10), (2, 20), (3, 30)]),
        "S": Relation(Schema("S", ["A", "C"]), [(1, 7), (1, 8), (3, 9)]),
    }


COLUMNAR = EngineConfig(representation="columnar")


class TestColumnarEngine:
    def test_matches_tuple_plane_exactly(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.B, S.C FROM R, S "
            "WHERE R.A = S.A AND S.C > 7"
        )
        tuple_extent = evaluate_view(view, relations())
        columnar_extent = evaluate_view(view, relations(), config=COLUMNAR)
        assert columnar_extent.rows == tuple_extent.rows
        assert columnar_extent.schema == tuple_extent.schema

    def test_no_index_path_matches(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A, S.C FROM R, S WHERE R.A = S.A"
        )
        config = EngineConfig(representation="columnar", use_index=False)
        with_index = evaluate_view(view, relations(), config=COLUMNAR)
        without = evaluate_view(view, relations(), config=config)
        assert sorted(without.rows) == sorted(with_index.rows)

    def test_nulls_never_join_or_select(self):
        data = {
            "R": Relation(Schema("R", ["A", "B"]), [(1, None), (None, 5), (2, 6)]),
            "S": Relation(Schema("S", ["A", "C"]), [(None, 1), (2, 2)]),
        }
        view = parse_view(
            "CREATE VIEW V AS SELECT R.B, S.C FROM R, S "
            "WHERE R.A = S.A AND R.B > 0"
        )
        reference = evaluate_view(view, data, config=EngineConfig(engine="naive"))
        columnar = evaluate_view(view, data, config=COLUMNAR)
        assert columnar.rows == [(6, 2)]
        assert sorted(columnar.rows) == sorted(reference.rows)

    def test_kernel_counters_record_scans(self):
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R WHERE R.B > 10")
        counters = KernelCounters()
        extent = evaluate_view(
            view, relations(), config=COLUMNAR, kernel_counters=counters
        )
        assert extent.rows == [(2,), (3,)]
        # The local filter scanned all three rows and kept two.
        assert counters.rows_scanned == 3
        assert counters.rows_selected == 2

    def test_empty_selection_short_circuits(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A, S.C FROM R, S "
            "WHERE R.B > 99 AND R.A = S.A"
        )
        extent = evaluate_view(view, relations(), config=COLUMNAR)
        assert extent.rows == []
        assert extent.schema.attribute_names == ("A", "C")

    def test_columnar_requires_indexed_engine(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(engine="naive", representation="columnar")

    def test_system_accumulates_kernel_counters(self):
        eve = EVESystem(
            config=SystemConfig(engine=EngineConfig(representation="columnar"))
        )
        eve.space.add_source("IS1")
        eve.space.register_relation(
            "IS1", Relation(Schema("R", ["A", "B"]), [(1, 2), (3, 4)])
        )
        eve.define_view("CREATE VIEW V AS SELECT R.A FROM R WHERE R.B > 2")
        assert eve.extent("V").rows == [(3,)]
        assert eve.kernel_counters.rows_scanned == 2
        assert eve.kernel_counters.rows_selected == 1


class TestTuplePushdown:
    """Projection pushdown: only referenced columns flow through joins."""

    WIDE = Schema("W", ["X", "Y", "Z", "K"])

    def wide_relations(self):
        return {
            "R": Relation(Schema("R", ["A", "B"]), [(1, 10), (2, 20)]),
            # Probing on W.Z (schema position 2) with unreferenced X, Y
            # in front: pushdown must index by schema position, not by
            # projected slot offset.
            "W": Relation(
                self.WIDE, [(7, 7, 10, 100), (8, 8, 20, 200), (9, 9, 10, 300)]
            ),
        }

    VIEW = (
        "CREATE VIEW V AS SELECT R.A, W.K FROM R, W WHERE R.B = W.Z"
    )

    def test_probe_on_non_leading_attribute(self):
        view = parse_view(self.VIEW)
        reference = evaluate_view(
            view, self.wide_relations(), config=EngineConfig(engine="naive")
        )
        for config in (EngineConfig(), COLUMNAR):
            extent = evaluate_view(view, self.wide_relations(), config=config)
            assert sorted(extent.rows) == sorted(reference.rows), config
            assert sorted(extent.rows) == [(1, 100), (1, 300), (2, 200)]

    def test_referenced_columns_exclude_dead_attributes(self):
        view = parse_view(self.VIEW)
        schemas = {"R": Schema("R", ["A", "B"]), "W": self.WIDE}
        resolved = ViewValidator(schemas).resolve_view(view)
        assert _referenced_columns(resolved) == {"R.A", "R.B", "W.Z", "W.K"}

    def test_binding_width_is_referenced_columns_only(self, monkeypatch):
        """Regression pin: intermediate bindings carry exactly the
        referenced columns (4), never the full joined width (6)."""
        widths = []
        original = evaluator_module.compile_clauses

        def recording(clauses, slots):
            widths.append(len(slots))
            return original(clauses, slots)

        monkeypatch.setattr(evaluator_module, "compile_clauses", recording)
        view = parse_view(self.VIEW)
        extent = evaluate_view(view, self.wide_relations())
        assert sorted(extent.rows) == [(1, 100), (1, 300), (2, 200)]
        assert widths  # the compiled plane ran
        assert max(widths) == 4
