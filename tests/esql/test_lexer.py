"""Unit tests for the E-SQL tokenizer."""

import pytest

from repro.errors import ParseError
from repro.esql.lexer import TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasics:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_keywords_case_insensitive(self):
        assert texts("select Select SELECT") == ["SELECT"] * 3

    def test_identifiers_keep_case(self):
        assert texts("FlightRes") == ["FlightRes"]

    def test_identifier_with_underscore_and_digits(self):
        assert texts("rel_2") == ["rel_2"]

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].text == "42"
        assert tokens[1].text == "3.5"

    def test_negative_number(self):
        assert texts("-7") == ["-7"]

    def test_qualified_ref_not_lexed_as_float(self):
        # "R.A" must come out as IDENT DOT IDENT, and "1.A" should not
        # swallow the dot either.
        assert texts("R.A") == ["R", ".", "A"]

    def test_strings_single_and_double_quoted(self):
        tokens = tokenize("'Asia' \"Europe\"")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "Asia"
        assert tokens[1].text == "Europe"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_symbols_longest_match(self):
        assert texts("<= >= <> < > =") == ["<=", ">=", "<>", "<", ">", "="]

    def test_double_equals_canonicalized(self):
        assert texts("==") == ["="]

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("a ; b")
        assert excinfo.value.column == 3

    def test_line_comments_skipped(self):
        assert texts("A -- comment\nB") == ["A", "B"]

    def test_positions_tracked_across_lines(self):
        tokens = tokenize("A\n  B")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestTokenHelpers:
    def test_is_keyword(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("SELECT")
        assert token.is_keyword("FROM", "SELECT")
        assert not token.is_keyword("FROM")

    def test_is_symbol(self):
        token = tokenize(",")[0]
        assert token.is_symbol(",")
        assert not token.is_symbol("(")

    def test_eof_rendering(self):
        assert str(tokenize("")[0]) == "<end of input>"
