"""Unit tests for view materialization."""

import pytest

from repro.errors import EvaluationError
from repro.esql.evaluator import evaluate_view, evaluate_views
from repro.esql.parser import parse_view
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType


@pytest.fixture
def relations():
    customer = Relation(
        Schema(
            "Customer",
            [
                Attribute("Name", AttributeType.STRING),
                Attribute("City", AttributeType.STRING),
            ],
        ),
        [("ann", "nyc"), ("bob", "sfo"), ("cy", "nyc")],
    )
    booking = Relation(
        Schema(
            "Booking",
            [
                Attribute("PName", AttributeType.STRING),
                Attribute("Dest", AttributeType.STRING),
            ],
        ),
        [("ann", "asia"), ("bob", "asia"), ("ann", "europe")],
    )
    return {"Customer": customer, "Booking": booking}


class TestSingleRelation:
    def test_projection(self, relations):
        view = parse_view("CREATE VIEW V AS SELECT Name FROM Customer")
        extent = evaluate_view(view, relations)
        assert extent.rows == [("ann",), ("bob",), ("cy",)]

    def test_selection(self, relations):
        view = parse_view(
            "CREATE VIEW V AS SELECT Name FROM Customer WHERE City = 'nyc'"
        )
        extent = evaluate_view(view, relations)
        assert extent.rows == [("ann",), ("cy",)]

    def test_alias_in_output_schema(self, relations):
        view = parse_view(
            "CREATE VIEW V AS SELECT Name AS Who FROM Customer"
        )
        extent = evaluate_view(view, relations)
        assert extent.schema.attribute_names == ("Who",)


class TestJoins:
    def test_equijoin_with_selection(self, relations):
        view = parse_view(
            """
            CREATE VIEW AsiaCustomer AS
            SELECT Customer.Name, City
            FROM Customer, Booking
            WHERE Customer.Name = Booking.PName AND Booking.Dest = 'asia'
            """
        )
        extent = evaluate_view(view, relations)
        assert sorted(extent.rows) == [("ann", "nyc"), ("bob", "sfo")]

    def test_bag_semantics_duplicate_join_matches(self, relations):
        view = parse_view(
            """
            CREATE VIEW V AS
            SELECT Customer.Name
            FROM Customer, Booking
            WHERE Customer.Name = Booking.PName
            """
        )
        extent = evaluate_view(view, relations)
        assert sorted(extent.rows) == [("ann",), ("ann",), ("bob",)]
        assert extent.distinct().cardinality == 2

    def test_join_order_does_not_change_result_set(self, relations):
        forward = parse_view(
            "CREATE VIEW V AS SELECT Customer.Name FROM Customer, Booking "
            "WHERE Customer.Name = Booking.PName"
        )
        backward = parse_view(
            "CREATE VIEW V AS SELECT Customer.Name FROM Booking, Customer "
            "WHERE Customer.Name = Booking.PName"
        )
        a = evaluate_view(forward, relations)
        b = evaluate_view(backward, relations)
        assert sorted(a.rows) == sorted(b.rows)

    def test_empty_join_short_circuits(self, relations):
        view = parse_view(
            "CREATE VIEW V AS SELECT Customer.Name FROM Customer, Booking "
            "WHERE Customer.Name = Booking.PName AND Booking.Dest = 'mars'"
        )
        assert evaluate_view(view, relations).cardinality == 0


class TestLookup:
    def test_callable_lookup(self, relations):
        view = parse_view("CREATE VIEW V AS SELECT Name FROM Customer")
        extent = evaluate_view(view, lambda name: relations[name])
        assert extent.cardinality == 3

    def test_missing_relation(self, relations):
        view = parse_view("CREATE VIEW V AS SELECT X FROM Nope")
        with pytest.raises((EvaluationError, KeyError)):
            evaluate_view(view, relations)

    def test_evaluate_views_by_name(self, relations):
        views = [
            parse_view("CREATE VIEW V1 AS SELECT Name FROM Customer"),
            parse_view("CREATE VIEW V2 AS SELECT Dest FROM Booking"),
        ]
        extents = evaluate_views(views, relations)
        assert set(extents) == {"V1", "V2"}
        assert extents["V2"].cardinality == 3
