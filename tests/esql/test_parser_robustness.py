"""Parser robustness: whitespace, comments, casing, formatting chaos."""

import pytest

from repro.errors import ParseError
from repro.esql.parser import parse_view

CANONICAL = parse_view(
    "CREATE VIEW V AS SELECT R.A (AD = true) FROM R WHERE R.A > 10"
)


class TestWhitespaceAndComments:
    def test_one_line(self):
        view = parse_view(
            "create view V as select R.A (ad=true) from R where R.A>10"
        )
        assert view == CANONICAL

    def test_excessive_whitespace(self):
        view = parse_view(
            "CREATE    VIEW\n\n  V \t AS\nSELECT   R.A   (AD  =  true)\n"
            "FROM\nR\nWHERE\nR.A  >  10"
        )
        assert view == CANONICAL

    def test_line_comments_anywhere(self):
        view = parse_view(
            """
            -- header comment
            CREATE VIEW V AS  -- the view
            SELECT R.A (AD = true)  -- keep A
            FROM R  -- base relation
            WHERE R.A > 10  -- threshold
            """
        )
        assert view == CANONICAL

    def test_mixed_keyword_case(self):
        view = parse_view(
            "Create View V As Select R.A (Ad = True) From R Where R.A > 10"
        )
        assert view == CANONICAL


class TestIdentifierEdges:
    def test_identifier_resembling_keyword_prefix(self):
        view = parse_view("CREATE VIEW Selection AS SELECT Fromage FROM Wherever")
        assert view.name == "Selection"
        assert view.interface == ("Fromage",)
        assert view.relation_names == ("Wherever",)

    def test_keyword_as_identifier_rejected(self):
        with pytest.raises(ParseError):
            parse_view("CREATE VIEW SELECT AS SELECT A FROM R")

    def test_underscore_heavy_names(self):
        view = parse_view(
            "CREATE VIEW v_1 AS SELECT r_x.col_a FROM r_x"
        )
        assert view.select[0].ref.attribute == "col_a"


class TestLiteralEdges:
    def test_string_with_spaces(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R WHERE R.City = 'New York'"
        )
        assert view.where[0].clause.right.value == "New York"

    def test_empty_string_literal(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R WHERE R.Tag = ''"
        )
        assert view.where[0].clause.right.value == ""

    def test_negative_and_float_literals(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R "
            "WHERE R.A > -5 AND R.A < 2.75"
        )
        assert view.where[0].clause.right.value == -5
        assert view.where[1].clause.right.value == 2.75

    def test_number_on_left_side(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R WHERE 10 < R.A"
        )
        clause = view.where[0].clause
        assert clause.normalized().comparator.value == ">"


class TestStructuralErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "CREATE",
            "CREATE VIEW",
            "CREATE VIEW V",
            "CREATE VIEW V AS",
            "CREATE VIEW V AS SELECT",
            "CREATE VIEW V AS SELECT A FROM",
            "CREATE VIEW V AS SELECT A FROM R WHERE",
            "CREATE VIEW V AS SELECT A, FROM R",
            "CREATE VIEW V AS SELECT A FROM R WHERE A >",
            "CREATE VIEW V AS SELECT A FROM R WHERE (A > 1",
            "CREATE VIEW V (VE =) AS SELECT A FROM R",
            "CREATE VIEW V AS SELECT A (AD) FROM R",
            "CREATE VIEW V AS SELECT A (AD = maybe) FROM R",
        ],
    )
    def test_malformed_inputs_raise_parse_error(self, text):
        with pytest.raises(ParseError):
            parse_view(text)
