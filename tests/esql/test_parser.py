"""Unit tests for the E-SQL parser."""

import pytest

from repro.errors import ParseError
from repro.esql.params import ViewExtent
from repro.esql.parser import parse_condition_clause, parse_view
from repro.relational.expressions import AttributeRef, Comparator, Constant

ASIA = """
CREATE VIEW AsiaCustomer (VE = '~') AS
SELECT Name, Address, Phone (AD = true, AR = true)
FROM Customer (RR = true), FlightRes
WHERE (Customer.Name = FlightRes.PName) AND (FlightRes.Dest = 'Asia') (CD = true)
"""


class TestFullView:
    """The paper's Asia-Customer example (query 2 of Sec. 3.1)."""

    @pytest.fixture
    def view(self):
        return parse_view(ASIA)

    def test_name_and_extent(self, view):
        assert view.name == "AsiaCustomer"
        assert view.extent_parameter is ViewExtent.ANY

    def test_select_items(self, view):
        assert view.interface == ("Name", "Address", "Phone")
        phone = view.select_item("Phone")
        assert phone.flags.dispensable and phone.flags.replaceable
        name = view.select_item("Name")
        assert not name.flags.dispensable and not name.flags.replaceable

    def test_from_items(self, view):
        assert view.relation_names == ("Customer", "FlightRes")
        assert view.from_item("Customer").flags.replaceable
        assert not view.from_item("FlightRes").flags.replaceable

    def test_where_items(self, view):
        assert len(view.where) == 2
        join, selection = view.where
        assert str(join.clause) == "Customer.Name = FlightRes.PName"
        assert not join.flags.dispensable
        assert str(selection.clause) == "FlightRes.Dest = 'Asia'"
        assert selection.flags.dispensable


class TestExtentParameter:
    @pytest.mark.parametrize(
        "symbol,expected",
        [
            ("'~'", ViewExtent.ANY),
            ("'='", ViewExtent.EQUAL),
            ("'>='", ViewExtent.SUPERSET),
            ("'<='", ViewExtent.SUBSET),
            ("'subset'", ViewExtent.SUBSET),
            ("superset", ViewExtent.SUPERSET),
        ],
    )
    def test_symbols(self, symbol, expected):
        view = parse_view(f"CREATE VIEW V (VE = {symbol}) AS SELECT A FROM R")
        assert view.extent_parameter is expected

    def test_unquoted_comparator_symbols(self):
        view = parse_view("CREATE VIEW V (VE = >=) AS SELECT A FROM R")
        assert view.extent_parameter is ViewExtent.SUPERSET

    def test_missing_ve_defaults_to_any(self):
        view = parse_view("CREATE VIEW V AS SELECT A FROM R")
        assert view.extent_parameter is ViewExtent.ANY

    def test_bad_symbol_rejected(self):
        with pytest.raises(ParseError):
            parse_view("CREATE VIEW V (VE = 'huh') AS SELECT A FROM R")


class TestSelectClause:
    def test_alias(self):
        view = parse_view("CREATE VIEW V AS SELECT R.A AS Alpha FROM R")
        item = view.select[0]
        assert item.output_name == "Alpha"
        assert item.ref == AttributeRef("A", "R")

    def test_unqualified_reference(self):
        view = parse_view("CREATE VIEW V AS SELECT A FROM R")
        assert view.select[0].ref == AttributeRef("A")

    def test_flag_variants(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT A (AD = true), B (AR = true), "
            "C (AD = false, AR = true) FROM R"
        )
        a, b, c = view.select
        assert a.flags.dispensable and not a.flags.replaceable
        assert b.flags.replaceable and not b.flags.dispensable
        assert c.flags.replaceable and not c.flags.dispensable

    def test_wrong_flag_kind_rejected(self):
        with pytest.raises(ParseError):
            parse_view("CREATE VIEW V AS SELECT A (RD = true) FROM R")


class TestWhereClause:
    def test_constants(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT A FROM R "
            "WHERE A > 10 AND B = 'x' AND C = 2.5"
        )
        values = [item.clause.right for item in view.where]
        assert values == [Constant(10), Constant("x"), Constant(2.5)]

    def test_boolean_literal(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT A FROM R WHERE Active = TRUE"
        )
        assert view.where[0].clause.right == Constant(True)

    def test_unparenthesized_clause_with_flags(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT A FROM R WHERE A > 1 (CD = true)"
        )
        assert view.where[0].flags.dispensable

    def test_all_comparators(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT A FROM R "
            "WHERE A < 1 AND A <= 2 AND A = 3 AND A >= 4 AND A > 5 AND A <> 6"
        )
        comparators = [item.clause.comparator for item in view.where]
        assert comparators == [
            Comparator.LT, Comparator.LE, Comparator.EQ,
            Comparator.GE, Comparator.GT, Comparator.NE,
        ]

    def test_missing_comparator(self):
        with pytest.raises(ParseError):
            parse_view("CREATE VIEW V AS SELECT A FROM R WHERE A 10")


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_view("CREATE VIEW V AS SELECT A")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_view("CREATE VIEW V AS SELECT A FROM R extra")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_view("CREATE TABLE V AS SELECT A FROM R")
        assert excinfo.value.line == 1


class TestStandaloneClause:
    def test_parse_condition_clause(self):
        clause = parse_condition_clause("R.A = S.B")
        assert clause.is_equijoin

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_condition_clause("R.A = S.B AND")
