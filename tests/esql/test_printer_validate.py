"""Unit tests for the printer and the semantic validator."""

import pytest

from repro.errors import SchemaError, UnknownAttributeError, UnknownRelationError
from repro.esql.parser import parse_view
from repro.esql.printer import format_view, format_view_compact
from repro.esql.validate import ViewValidator
from repro.relational.expressions import AttributeRef
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType

SCHEMAS = {
    "R": Schema("R", [Attribute("A"), Attribute("B", AttributeType.STRING)]),
    "S": Schema("S", [Attribute("A"), Attribute("C")]),
}


class TestPrinter:
    def test_round_trip_simple(self):
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        assert parse_view(format_view(view)) == view

    def test_round_trip_full(self):
        view = parse_view(
            """
            CREATE VIEW V (VE = '<=') AS
            SELECT R.A AS Alpha (AD = true, AR = true), B (AD = true)
            FROM R (RD = true, RR = true), S
            WHERE (R.A = S.A) (CD = true, CR = true) AND (B = 'x')
            """
        )
        assert parse_view(format_view(view)) == view

    def test_compact_round_trip(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R WHERE R.A > 3 (CD = true)"
        )
        assert parse_view(format_view_compact(view)) == view

    def test_compact_is_single_line(self):
        view = parse_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        assert "\n" not in format_view_compact(view)


class TestValidator:
    @pytest.fixture
    def validator(self):
        return ViewValidator(SCHEMAS)

    def test_valid_view_passes(self, validator):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A, C FROM R, S WHERE R.A = S.A"
        )
        validator.validate(view)

    def test_unknown_relation(self, validator):
        view = parse_view("CREATE VIEW V AS SELECT T.A FROM T")
        with pytest.raises(UnknownRelationError):
            validator.validate(view)

    def test_unknown_attribute(self, validator):
        view = parse_view("CREATE VIEW V AS SELECT R.Z FROM R")
        with pytest.raises(UnknownAttributeError):
            validator.validate(view)

    def test_qualified_ref_to_absent_from_relation(self, validator):
        view = parse_view("CREATE VIEW V AS SELECT S.A FROM R")
        with pytest.raises(UnknownRelationError):
            validator.validate(view)

    def test_ambiguous_unqualified_ref(self, validator):
        view = parse_view("CREATE VIEW V AS SELECT A FROM R, S")
        with pytest.raises(SchemaError) as excinfo:
            validator.validate(view)
        assert "ambiguous" in str(excinfo.value)

    def test_resolution_qualifies_unique_bare_names(self, validator):
        view = parse_view("CREATE VIEW V AS SELECT C FROM R, S")
        resolved = validator.resolve_view(view)
        assert resolved.select[0].ref == AttributeRef("C", "S")
        assert resolved.select[0].output_name == "C"

    def test_where_refs_resolved_and_type_checked(self, validator):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R WHERE B = 'x'"
        )
        resolved = validator.resolve_view(view)
        assert resolved.where[0].clause.left == AttributeRef("B", "R")

    def test_type_mismatch_in_clause(self, validator):
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R WHERE B = 3")
        with pytest.raises(SchemaError) as excinfo:
            validator.validate(view)
        assert "compares" in str(excinfo.value)

    def test_attribute_vs_attribute_type_check(self, validator):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R, S WHERE R.B = S.C"
        )
        with pytest.raises(SchemaError):
            validator.validate(view)

    def test_output_schema_uses_aliases_and_source_types(self, validator):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.B AS Name, S.C FROM R, S "
            "WHERE R.A = S.A"
        )
        schema = validator.output_schema(view)
        assert schema.attribute_names == ("Name", "C")
        assert schema.attribute("Name").type is AttributeType.STRING
