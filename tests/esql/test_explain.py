"""EXPLAIN plans: golden renderings, estimate/actual reconciliation.

The EXPLAIN subsystem's contract (ISSUE 8): ``to_text()`` and
``to_dict()`` are *stable* — tooling and the schema-v3 SystemReport
``plans`` section depend on their exact shape — and an ``analyze`` run
reconciles the cost model's estimates against the binding counts the
evaluator actually saw, on every representation.
"""

import pytest

from repro.config import EngineConfig, MaintenanceConfig
from repro.errors import EvaluationError
from repro.esql.explain import (
    build_plan,
    clause_selectivity,
    explain_maintenance,
    explain_view,
)
from repro.esql.parser import parse_view
from repro.misd.statistics import (
    DEFAULT_JOIN_SELECTIVITY,
    DEFAULT_SELECTIVITY,
    RelationStatistics,
    SpaceStatistics,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.relational.types import AttributeType


def string_schema(name, attrs):
    return Schema(
        name, [Attribute(a, AttributeType.STRING) for a in attrs]
    )


@pytest.fixture
def relations():
    return {
        "Customer": Relation(
            string_schema("Customer", ["Name", "City"]),
            [("ann", "nyc"), ("bob", "sfo"), ("cy", "nyc")],
        ),
        "Booking": Relation(
            string_schema("Booking", ["PName", "Dest"]),
            [("ann", "asia"), ("bob", "asia"), ("ann", "europe")],
        ),
    }


@pytest.fixture
def view():
    return parse_view(
        "CREATE VIEW V AS SELECT Customer.Name, Dest "
        "FROM Customer, Booking "
        "WHERE Customer.Name = Booking.PName AND City = 'nyc'"
    )


class TestGoldenRenderings:
    def test_tuple_plan_text_is_stable(self, view, relations):
        plan = explain_view(
            view, relations, config=EngineConfig(), analyze=True
        )
        assert plan.to_text() == (
            "EXPLAIN Ext(V) [engine=indexed representation=tuple "
            "index=on optimize=off]\n"
            "  join order: Customer -> Booking\n"
            "  1. Customer: filtered scan [Customer.City = 'nyc'], "
            "rows~1.5, actual=2\n"
            "  2. Booking: index probe on Booking.PName = Customer.Name, "
            "rows~0.0, actual=2\n"
            "  select: Name, Dest\n"
            "  estimated: rows~0.0, cost~6.0 row-ops\n"
            "  actual: 2 rows"
        )

    def test_dict_shape_is_stable(self, view, relations):
        plan = explain_view(view, relations, config=EngineConfig())
        payload = plan.to_dict()
        assert sorted(payload) == [
            "actual_rows", "engine", "estimated_cost", "estimated_rows",
            "join_order", "kernels", "kind", "optimize", "optimizer",
            "output", "representation", "steps", "use_index", "view",
        ]
        assert payload["kind"] == "evaluation"
        assert payload["join_order"] == ["Customer", "Booking"]
        for step in payload["steps"]:
            assert sorted(step) == [
                "access", "actual_rows", "columns", "cross",
                "estimated_cost", "estimated_rows", "local", "position",
                "probe", "pushed", "relation", "relation_rows", "semi",
            ]
        assert [s["access"] for s in payload["steps"]] == [
            "scan", "index_probe",
        ]

    def test_maintenance_plan_text_is_stable(self, view, relations):
        schemas = {n: r.schema for n, r in relations.items()}
        explain = explain_maintenance(
            view,
            {"Customer": "A", "Booking": "B"},
            schemas,
            updated_relation="Booking",
        )
        assert explain.to_text() == (
            "EXPLAIN maintain V on update(Booking) "
            "[representation=tuple index=on]\n"
            "  sources: B -> A\n"
            "  1. Customer @ A: index probe on "
            "Customer.Name = Booking.PName\n"
            "  estimated: 2 messages"
        )
        payload = explain.to_dict()
        assert payload["kind"] == "maintenance"
        assert payload["steps"][0]["access"] == "index_probe"

    def test_maintenance_scan_without_index(self, view, relations):
        schemas = {n: r.schema for n, r in relations.items()}
        explain = explain_maintenance(
            view,
            {"Customer": "A", "Booking": "B"},
            schemas,
            updated_relation="Booking",
            config=MaintenanceConfig(use_index=False),
        )
        assert explain.steps[0].access == "scan"
        assert "1. Customer @ A: scan" in explain.to_text()


class TestRepresentations:
    @pytest.mark.parametrize(
        "config, representation",
        [
            (EngineConfig(), "tuple"),
            (EngineConfig(representation="columnar"), "columnar"),
            (EngineConfig(engine="naive"), "dict"),
        ],
    )
    def test_every_representation_reports_estimates_and_actuals(
        self, view, relations, config, representation
    ):
        plan = explain_view(view, relations, config=config, analyze=True)
        assert plan.representation == representation
        assert plan.actual_rows == 2
        assert plan.estimated_rows > 0
        for step in plan.steps:
            assert step.actual_rows is not None
            assert step.estimated_rows >= 0

    def test_columnar_analyze_reports_kernels(self, view, relations):
        plan = explain_view(
            view,
            relations,
            config=EngineConfig(representation="columnar"),
            analyze=True,
        )
        assert plan.kernels is not None
        assert plan.kernels["rows_scanned"] >= plan.kernels["rows_selected"]
        assert "kernels: scanned=" in plan.to_text()

    def test_naive_plan_keeps_literal_from_order(self, relations):
        view = parse_view(
            "CREATE VIEW V AS SELECT Customer.Name, Dest "
            "FROM Booking, Customer "
            "WHERE Customer.Name = Booking.PName AND City = 'nyc'"
        )
        naive = build_plan(
            view, relations, config=EngineConfig(engine="naive")
        )
        indexed = build_plan(view, relations, config=EngineConfig())
        assert naive.join_order == ("Booking", "Customer")
        # The indexed engine reorders greedily: the filtered Customer
        # scan (est. 1.5 rows) beats the unfiltered Booking scan.
        assert indexed.join_order == ("Customer", "Booking")


class TestReconciliation:
    def test_steps_after_exhaustion_report_zero(self, relations):
        view = parse_view(
            "CREATE VIEW V AS SELECT Customer.Name, Dest "
            "FROM Customer, Booking "
            "WHERE Customer.Name = Booking.PName AND City = 'zz'"
        )
        plan = explain_view(
            view, relations, config=EngineConfig(), analyze=True
        )
        assert plan.actual_rows == 0
        assert [step.actual_rows for step in plan.steps] == [0, 0]

    def test_build_plan_never_executes(self, view, relations):
        before = {name: r.rows for name, r in relations.items()}
        plan = build_plan(view, relations)
        assert plan.actual_rows is None
        assert all(s.actual_rows is None for s in plan.steps)
        assert {n: r.rows for n, r in relations.items()} == before


class TestStatisticsOnlyPlans:
    def test_plan_from_schemas_and_statistics(self, view, relations):
        schemas = {n: r.schema for n, r in relations.items()}
        statistics = SpaceStatistics(
            relations={
                "Customer": RelationStatistics(cardinality=100),
                "Booking": RelationStatistics(cardinality=1000),
            }
        )
        plan = build_plan(view, None, statistics, schemas=schemas)
        by_name = {step.relation: step for step in plan.steps}
        assert by_name["Customer"].relation_rows == 100.0
        assert by_name["Booking"].relation_rows == 1000.0
        assert plan.join_order == ("Customer", "Booking")

    def test_missing_schemas_rejected(self, view):
        with pytest.raises(EvaluationError, match="schemas"):
            build_plan(view, None)


class TestClauseSelectivity:
    def test_equijoin_takes_join_selectivity(self):
        from repro.esql.parser import parse_condition_clause

        assert clause_selectivity(
            parse_condition_clause("R.A = S.B"), None
        ) == DEFAULT_JOIN_SELECTIVITY

    def test_local_clause_defaults_to_sigma(self):
        from repro.esql.parser import parse_condition_clause

        assert clause_selectivity(
            parse_condition_clause("R.A = 'x'"), None
        ) == DEFAULT_SELECTIVITY

    def test_single_relation_takes_recorded_sigma(self):
        from repro.esql.parser import parse_condition_clause

        statistics = SpaceStatistics(
            relations={
                "R": RelationStatistics(cardinality=10, selectivity=0.25)
            }
        )
        assert clause_selectivity(
            parse_condition_clause("R.A = 'x'"), statistics
        ) == 0.25
