"""Unit tests for E-SQL evolution parameters."""

import pytest

from repro.esql.params import (
    DISPENSABLE_ONLY,
    RELAXED,
    REPLACEABLE_ONLY,
    STRICT,
    AttributeCategory,
    EvolutionFlags,
    ViewExtent,
)


class TestViewExtent:
    @pytest.mark.parametrize(
        "symbol,expected",
        [
            ("~", ViewExtent.ANY),
            ("any", ViewExtent.ANY),
            ("=", ViewExtent.EQUAL),
            ("==", ViewExtent.EQUAL),
            (">=", ViewExtent.SUPERSET),
            ("SUPERSET", ViewExtent.SUPERSET),
            ("<=", ViewExtent.SUBSET),
            (" subset ", ViewExtent.SUBSET),
        ],
    )
    def test_from_symbol(self, symbol, expected):
        assert ViewExtent.from_symbol(symbol) is expected

    def test_from_symbol_unknown(self):
        with pytest.raises(ValueError):
            ViewExtent.from_symbol("whatever")

    def test_missing_tuple_policy(self):
        # D1 > 0 allowed only for ANY and SUBSET (Sec. 5.4.2).
        assert ViewExtent.ANY.allows_missing_tuples
        assert ViewExtent.SUBSET.allows_missing_tuples
        assert not ViewExtent.EQUAL.allows_missing_tuples
        assert not ViewExtent.SUPERSET.allows_missing_tuples

    def test_surplus_tuple_policy(self):
        # D2 > 0 allowed only for ANY and SUPERSET.
        assert ViewExtent.ANY.allows_surplus_tuples
        assert ViewExtent.SUPERSET.allows_surplus_tuples
        assert not ViewExtent.EQUAL.allows_surplus_tuples
        assert not ViewExtent.SUBSET.allows_surplus_tuples


class TestAttributeCategory:
    def test_of_maps_all_four(self):
        assert AttributeCategory.of(True, True) is AttributeCategory.C1
        assert AttributeCategory.of(True, False) is AttributeCategory.C2
        assert AttributeCategory.of(False, True) is AttributeCategory.C3
        assert AttributeCategory.of(False, False) is AttributeCategory.C4

    def test_preservation_requirement(self):
        # Fig. 6: categories 3/4 must stay.
        assert AttributeCategory.C3.must_be_preserved
        assert AttributeCategory.C4.must_be_preserved
        assert not AttributeCategory.C1.must_be_preserved
        assert not AttributeCategory.C2.must_be_preserved


class TestEvolutionFlags:
    def test_defaults_are_strict(self):
        flags = EvolutionFlags()
        assert not flags.dispensable
        assert not flags.replaceable
        assert flags.category is AttributeCategory.C4

    def test_named_constants(self):
        assert STRICT.category is AttributeCategory.C4
        assert RELAXED.category is AttributeCategory.C1
        assert DISPENSABLE_ONLY.category is AttributeCategory.C2
        assert REPLACEABLE_ONLY.category is AttributeCategory.C3

    def test_format_omits_defaults(self):
        assert STRICT.format("AD", "AR") == ""

    def test_format_renders_set_flags(self):
        assert RELAXED.format("AD", "AR") == " (AD = true, AR = true)"
        assert DISPENSABLE_ONLY.format("CD", "CR") == " (CD = true)"
