"""Targeted tests for the evaluator's hash-join fast path.

The nested-loop fallback and the hash path must agree on every query
shape; these tests pin the cases where the fast path could diverge.
"""

import pytest

from repro.esql.evaluator import evaluate_view
from repro.esql.parser import parse_view
from repro.relational.relation import Relation
from repro.relational.schema import Schema


@pytest.fixture
def relations():
    return {
        "R": Relation(
            Schema("R", ["A", "B"]),
            [(1, 10), (2, 20), (None, 30), (2, 21)],
        ),
        "S": Relation(
            Schema("S", ["A", "C"]),
            [(1, 100), (2, 200), (None, 300)],
        ),
        "T": Relation(Schema("T", ["B", "D"]), [(10, 7), (20, 8)]),
    }


class TestHashPathSemantics:
    def test_null_keys_never_match(self, relations):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.B, S.C FROM R, S WHERE R.A = S.A"
        )
        extent = evaluate_view(view, relations)
        # (None, 30) x (None, 300) must NOT join (None != None in SQL).
        assert (30, 300) not in extent.rows
        assert sorted(extent.rows) == [(10, 100), (20, 200), (21, 200)]

    def test_mixed_equijoin_and_filter(self, relations):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.B, S.C FROM R, S "
            "WHERE R.A = S.A AND S.C > 150"
        )
        extent = evaluate_view(view, relations)
        assert sorted(extent.rows) == [(20, 200), (21, 200)]

    def test_two_equijoins_on_one_relation(self, relations):
        # Both join clauses decidable at T's position: composite hash key.
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A, T.D FROM R, T "
            "WHERE R.B = T.B"
        )
        extent = evaluate_view(view, relations)
        assert sorted(extent.rows, key=repr) == sorted(
            [(1, 7), (2, 8)], key=repr
        )

    def test_three_way_chain(self, relations):
        view = parse_view(
            "CREATE VIEW V AS SELECT S.C, T.D FROM R, S, T "
            "WHERE R.A = S.A AND R.B = T.B"
        )
        extent = evaluate_view(view, relations)
        assert sorted(extent.rows) == [(100, 7), (200, 8)]

    def test_non_equi_clause_uses_fallback(self, relations):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.B, S.C FROM R, S WHERE R.A < S.A"
        )
        extent = evaluate_view(view, relations)
        assert (10, 200) in extent.rows  # R.A=1 < S.A=2
        assert (20, 100) not in extent.rows

    def test_equijoin_within_same_relation_stays_residual(self, relations):
        # Both sides reference the newly added relation: not hash-joinable.
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R WHERE R.A = R.B"
        )
        extent = evaluate_view(view, {"R": Relation(
            Schema("R", ["A", "B"]), [(5, 5), (1, 2)]
        )})
        assert extent.rows == [(5,)]

    def test_agrees_with_fallback_on_duplicates(self):
        # Bag semantics: multiplicities multiply across the join.
        r = Relation(Schema("R", ["A"]), [(1,), (1,)])
        s = Relation(Schema("S", ["A", "B"]), [(1, 9), (1, 9)])
        view = parse_view(
            "CREATE VIEW V AS SELECT S.B FROM R, S WHERE R.A = S.A"
        )
        extent = evaluate_view(view, {"R": r, "S": s})
        assert extent.rows == [(9,)] * 4
