"""Unit tests for the paper's experiment scenario builders."""

import pytest

from repro.qc.cost import cf_bytes, cf_io, cf_messages_counted
from repro.workloadgen.scenarios import (
    TABLE1,
    TABLE3_CARDINALITIES,
    build_cardinality_scenario,
    build_survival_scenario,
    site_scenarios,
)


class TestSurvivalScenario:
    def test_structure(self):
        scenario = build_survival_scenario()
        assert scenario.space.has_relation("R")
        assert scenario.view.name == "V0"
        assert len(scenario.space.mkb.pc_constraints()) == 2

    def test_deterministic(self):
        a = build_survival_scenario(seed=3)
        b = build_survival_scenario(seed=3)
        assert a.space.relation("R").rows == b.space.relation("R").rows


class TestSiteScenarios:
    def test_distribution_counts_match_table2(self):
        assert [len(site_scenarios(m)) for m in range(1, 7)] == [
            1, 5, 10, 10, 5, 1,
        ]

    def test_plan_shape(self):
        scenarios = site_scenarios(2)
        one_five = scenarios[0]
        assert one_five.distribution == (1, 5)
        assert one_five.plan.source_count == 2
        assert one_five.plan.updated_relation == "R0"
        assert one_five.plan.groups[0].source == "IS1"

    def test_statistics_match_table1(self):
        scenario = site_scenarios(1)[0]
        stats = scenario.statistics
        assert stats.join_selectivity == TABLE1["join_selectivity"]
        assert stats.blocking_factor == TABLE1["blocking_factor"]
        assert stats.cardinality("R0") == TABLE1["cardinality"]

    def test_update_at_other_relation(self):
        scenario = site_scenarios(2, updated_index=5)[0]
        assert scenario.plan.updated_relation == "R5"
        # The plan is rooted at R5's source.
        assert "R5" in scenario.plan.groups[0].relations

    def test_cost_factors_computable_for_every_distribution(self):
        for sites in range(1, 7):
            for scenario in site_scenarios(sites):
                assert cf_messages_counted(scenario.plan) >= 1
                assert cf_bytes(scenario.plan, scenario.statistics) > 0
                assert cf_io(scenario.plan, scenario.statistics) == 31


class TestCardinalityScenario:
    def test_statistics_match_table3(self):
        scenario = build_cardinality_scenario()
        stats = scenario.space.mkb.statistics
        for name, cardinality in TABLE3_CARDINALITIES.items():
            assert stats.cardinality(name) == cardinality

    def test_pc_chain_registered(self):
        scenario = build_cardinality_scenario()
        mkb = scenario.space.mkb
        for substitute in scenario.substitute_names:
            assert mkb.pc_constraint_between("R2", substitute) is not None

    def test_unpopulated_by_default(self):
        scenario = build_cardinality_scenario()
        assert scenario.space.relation("R2").cardinality == 0

    def test_populated_respects_chain(self):
        scenario = build_cardinality_scenario(populate=True)
        relations = scenario.space.relations()
        s = [relations[f"S{i}"] for i in range(1, 6)]
        r2 = relations["R2"]
        assert s[0].row_set() <= s[1].row_set() <= s[2].row_set()
        assert s[2].row_set() == r2.row_set()
        assert s[2].row_set() <= s[3].row_set() <= s[4].row_set()
        for index, name in enumerate(scenario.substitute_names):
            assert relations[name].cardinality == TABLE3_CARDINALITIES[name]

    def test_original_relations_snapshot(self):
        scenario = build_cardinality_scenario(populate=True)
        scenario.space.delete_relation("R2")
        assert scenario.original_relations["R2"].cardinality == 4000


class TestEvolutionStorm:
    def _build(self, **overrides):
        from repro.workloadgen.scenarios import build_evolution_storm_scenario

        args = dict(
            views=60,
            view_relations=12,
            spare_relations=8,
            changes=18,
            hot_renames=3,
            replacement_deletes=2,
            seed=5,
        )
        args.update(overrides)
        return build_evolution_storm_scenario(**args)

    def test_deterministic(self):
        first = self._build()
        second = self._build()
        assert [c.describe() for c in first.changes] == [
            c.describe() for c in second.changes
        ]
        assert [str(v) for v in first.views] == [str(v) for v in second.views]

    def test_shape(self):
        scenario = self._build()
        assert len(scenario.views) == 60
        assert len(scenario.changes) == 18
        assert len(scenario.mirrored_relations) == 2
        # Every mirrored relation has an equivalent donor registered.
        for index, name in enumerate(scenario.mirrored_relations):
            assert f"Mirror{index}" in scenario.space.mkb.relation_names
            assert scenario.space.mkb.sync_pc_constraints(name)

    def test_batch_replays_cleanly_end_to_end(self):
        from repro.core.eve import EVESystem

        scenario = self._build()
        eve = EVESystem(space=scenario.space)
        for view in scenario.views:
            eve.define_view(view, materialize=False)
        results = eve.apply_changes(scenario.changes)
        # Mirrored deletes keep their views alive via replacement.
        assert all(result.survived for result in results)
        assert all(record.alive for record in eve.vkb)


class TestShardedStorm:
    def _build(self, **overrides):
        from repro.workloadgen.scenarios import build_sharded_storm_scenario

        args = dict(
            views=40,
            view_relations=10,
            donors_per_relation=2,
            view_attributes=2,
            batches=4,
        )
        args.update(overrides)
        return build_sharded_storm_scenario(**args)

    def test_batches_partition_the_change_stream(self):
        scenario = self._build()
        assert len(scenario.change_batches) == 4
        widths = [len(batch) for batch in scenario.change_batches]
        assert sum(widths) == len(scenario.changes)
        assert max(widths) - min(widths) <= 1
        # Flattened batches replay the exact serial stream.
        from repro.workloadgen.scenarios import (
            build_scheduler_stress_scenario,
        )

        reference = build_scheduler_stress_scenario(
            views=40, view_relations=10, donors_per_relation=2,
            view_attributes=2,
        )
        assert [c.describe() for c in scenario.changes] == [
            c.describe() for c in reference.changes
        ]

    def test_tail_batch_carved_to_requested_size(self):
        scenario = self._build(tail_changes=1)
        assert len(scenario.change_batches) == 4
        assert len(scenario.change_batches[-1]) == 1
        head = [len(b) for b in scenario.change_batches[:-1]]
        assert max(head) - min(head) <= 1
        assert sum(head) + 1 == len(scenario.changes)

    def test_tail_clamps_to_leave_head_batches_nonempty(self):
        scenario = self._build(tail_changes=10_000)
        assert all(batch for batch in scenario.change_batches)
        assert sum(
            len(batch) for batch in scenario.change_batches
        ) == len(scenario.changes)

    def test_single_batch_ignores_tail(self):
        scenario = self._build(batches=1, tail_changes=3)
        assert len(scenario.change_batches) == 1

    def test_negative_tail_rejected(self):
        with pytest.raises(ValueError, match="tail_changes"):
            self._build(tail_changes=-1)
