"""Unit tests for the synthetic data generators."""

import pytest

from repro.relational.types import AttributeType
from repro.workloadgen.generator import (
    distributions,
    make_schema,
    populate_contained_family,
    populate_relation,
    update_stream,
)


class TestSchemaHelper:
    def test_uniform_type(self):
        schema = make_schema("R", ["A", "B"], AttributeType.STRING, 30)
        assert all(a.type is AttributeType.STRING for a in schema)
        assert schema.tuple_byte_size() == 60


class TestPopulate:
    def test_cardinality_and_determinism(self):
        a = populate_relation(make_schema("R", ["A", "B"]), 100, seed=5)
        b = populate_relation(make_schema("R", ["A", "B"]), 100, seed=5)
        assert a.cardinality == 100
        assert a.rows == b.rows

    def test_different_seeds_differ(self):
        a = populate_relation(make_schema("R", ["A"]), 50, seed=1)
        b = populate_relation(make_schema("R", ["A"]), 50, seed=2)
        assert a.rows != b.rows

    def test_key_space_bounds_values(self):
        relation = populate_relation(
            make_schema("R", ["A"]), 200, seed=0, key_space=7
        )
        assert all(0 <= row[0] < 7 for row in relation)

    def test_key_space_controls_join_selectivity(self):
        # Two relations over key space K equijoin with selectivity ~1/K.
        k = 20
        left = populate_relation(make_schema("L", ["A"]), 300, 1, key_space=k)
        right = populate_relation(make_schema("R", ["A"]), 300, 2, key_space=k)
        matches = sum(
            1 for l in left for r in right if l[0] == r[0]
        )
        observed = matches / (300 * 300)
        assert observed == pytest.approx(1 / k, rel=0.3)


class TestContainedFamily:
    def test_chain_containment_holds_exactly(self):
        schemas = [make_schema(f"S{i}", ["A", "B"]) for i in range(3)]
        chain = populate_contained_family(schemas, [10, 20, 40], seed=3)
        assert [r.cardinality for r in chain] == [10, 20, 40]
        assert chain[0].row_set() <= chain[1].row_set() <= chain[2].row_set()

    def test_rows_are_distinct(self):
        schemas = [make_schema(f"S{i}", ["A"]) for i in range(2)]
        chain = populate_contained_family(
            schemas, [50, 100], seed=3, key_space=10_000
        )
        assert len(chain[1].row_set()) == 100

    def test_decreasing_cardinalities_rejected(self):
        schemas = [make_schema(f"S{i}", ["A"]) for i in range(2)]
        with pytest.raises(ValueError):
            populate_contained_family(schemas, [20, 10])

    def test_arity_mismatch_rejected(self):
        schemas = [make_schema("S0", ["A"]), make_schema("S1", ["A", "B"])]
        with pytest.raises(ValueError):
            populate_contained_family(schemas, [10, 20])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            populate_contained_family([make_schema("S", ["A"])], [1, 2])


class TestUpdateStream:
    def test_replayable_deletes(self):
        relation = populate_relation(make_schema("R", ["A", "B"]), 50, seed=4)
        stream = update_stream(relation, 100, seed=4, insert_fraction=0.5)
        for kind, row in stream:
            if kind == "insert":
                relation.insert(row)
            else:
                assert relation.delete(row), f"stream deleted missing {row}"

    def test_pure_insert_stream(self):
        relation = populate_relation(make_schema("R", ["A"]), 5, seed=0)
        stream = update_stream(relation, 20, seed=0, insert_fraction=1.0)
        assert all(kind == "insert" for kind, _ in stream)

    def test_deterministic(self):
        relation = populate_relation(make_schema("R", ["A"]), 5, seed=0)
        a = update_stream(relation, 20, seed=9, insert_fraction=0.3)
        b = update_stream(relation, 20, seed=9, insert_fraction=0.3)
        assert a == b


class TestDistributions:
    def test_table2_row_for_two_sites(self):
        assert distributions(6, 2) == [(1, 5), (2, 4), (3, 3), (4, 2), (5, 1)]

    def test_table2_row_counts(self):
        # Table 2: 1, 5, 10, 10, 5, 1 distributions for m = 1..6.
        assert [len(distributions(6, m)) for m in range(1, 7)] == [
            1, 5, 10, 10, 5, 1,
        ]

    def test_every_distribution_sums_to_total(self):
        for dist in distributions(6, 3):
            assert sum(dist) == 6
            assert all(count >= 1 for count in dist)

    def test_degenerate_inputs(self):
        assert distributions(2, 3) == []
        assert distributions(5, 0) == []
