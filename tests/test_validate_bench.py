"""The benchmark-JSON contract (benchmarks/validate_bench.py) as a unit."""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import validate_bench  # noqa: E402
from validate_bench import (  # noqa: E402
    BenchValidationError,
    GATED_SPEEDUPS,
    bench_name,
    check_regression,
    is_smoke,
    validate_payload,
    validate_system_report,
)


def committed(name):
    path = REPO_ROOT / f"BENCH_{name}.json"
    if not path.exists():
        pytest.skip(f"{path.name} not generated yet")
    with open(path) as handle:
        return json.load(handle)


class TestStructuralValidation:
    @pytest.mark.parametrize(
        "name", ["engine", "sync", "scheduler", "maintenance", "serving"]
    )
    def test_committed_payloads_validate(self, name):
        validate_payload(name, committed(name))

    def test_missing_section_rejected(self):
        with pytest.raises(BenchValidationError, match="missing section"):
            validate_payload("engine", {})

    def test_violated_invariant_rejected(self):
        payload = committed("scheduler")
        payload["parallel_storm"]["outcomes_equal"] = False
        with pytest.raises(BenchValidationError, match="diverged"):
            validate_payload("scheduler", payload)

    def test_maintenance_counters_invariant_enforced(self):
        payload = committed("maintenance")
        payload["update_storm"]["counters_equal"] = False
        with pytest.raises(BenchValidationError, match="counters diverged"):
            validate_payload("maintenance", payload)

    def test_unknown_bench_rejected(self):
        with pytest.raises(BenchValidationError, match="no validator"):
            validate_payload("warp-drive", {})

    def test_bench_name_parses_only_bench_files(self):
        assert bench_name(Path("BENCH_scheduler.json")) == "scheduler"
        with pytest.raises(BenchValidationError):
            bench_name(Path("results.json"))

    def test_every_gated_bench_has_a_validator(self):
        assert set(GATED_SPEEDUPS) <= set(validate_bench.VALIDATORS)

    def test_columnar_parity_invariant_enforced(self):
        payload = committed("engine")
        payload["view_evaluation_large"]["results_equal"] = False
        with pytest.raises(BenchValidationError, match="columnar"):
            validate_payload("engine", payload)

    def test_sharded_parity_invariant_enforced(self):
        payload = committed("scheduler")
        payload["sharded_storm"]["outcomes_equal"] = False
        with pytest.raises(BenchValidationError, match="diverged"):
            validate_payload("scheduler", payload)

    def test_warm_snapshot_shipping_rejected(self):
        payload = committed("scheduler")
        payload["sharded_storm"]["warm_snapshot_bytes"] = 4096
        with pytest.raises(BenchValidationError, match="snapshot"):
            validate_payload("scheduler", payload)

    def test_workers_floor_gates_full_runs_only(self):
        payload = committed("scheduler")
        payload["config"]["smoke"] = False
        payload["sharded_storm"]["workers_speedup"] = 1.1
        with pytest.raises(BenchValidationError, match="floor"):
            validate_payload("scheduler", payload)
        # Smoke runs the lane at toy scale where pool spawn dominates:
        # parity and shipping invariants gate, the floor is waived.
        payload["config"]["smoke"] = True
        validate_payload("scheduler", payload)

    def test_torn_reads_rejected(self):
        payload = committed("serving")
        payload["storm_reads"]["torn_reads"] = 1
        with pytest.raises(BenchValidationError, match="torn"):
            validate_payload("serving", payload)

    def test_zero_copy_invariant_enforced(self):
        payload = committed("serving")
        payload["snapshot_isolation"]["copied_untouched_views"] = 3
        with pytest.raises(BenchValidationError, match="copied"):
            validate_payload("serving", payload)

    def test_serving_parity_invariant_enforced(self):
        payload = committed("serving")
        payload["executor_parity"]["outcomes_equal"] = False
        with pytest.raises(BenchValidationError, match="diverged"):
            validate_payload("serving", payload)

    def test_serving_p99_ceiling_gates_full_runs_only(self):
        payload = committed("serving")
        payload["config"]["smoke"] = False
        payload["config"]["cpus"] = 8
        payload["storm_reads"]["p99_ratio"] = 5.0
        with pytest.raises(BenchValidationError, match="ceiling"):
            validate_payload("serving", payload)
        # Smoke runs a toy storm where per-read overhead dominates:
        # the correctness invariants gate, the latency ceiling is waived.
        payload["config"]["smoke"] = True
        validate_payload("serving", payload)

    def test_serving_p99_single_core_allowance(self):
        # A single-CPU recording host gets the documented OS-fair-share
        # allowance (8x) instead of the 2x multi-core ceiling — and
        # still fails beyond it.
        payload = committed("serving")
        payload["config"]["smoke"] = False
        payload["config"]["cpus"] = 1
        payload["storm_reads"]["p99_ratio"] = 5.0
        validate_payload("serving", payload)
        payload["storm_reads"]["p99_ratio"] = 9.0
        with pytest.raises(BenchValidationError, match="ceiling"):
            validate_payload("serving", payload)

    def test_serving_p50_ceiling_every_host(self):
        # The median gate is core-count independent: a blocked reader
        # shows up at p50 long before the tail.
        payload = committed("serving")
        payload["config"]["smoke"] = False
        payload["config"]["cpus"] = 1
        payload["storm_reads"]["p50_ratio"] = 2.5
        with pytest.raises(BenchValidationError, match="p50"):
            validate_payload("serving", payload)

    def test_columnar_floor_gates_full_runs_only(self):
        payload = committed("engine")
        payload["view_evaluation_large"]["speedup"] = 1.2
        with pytest.raises(BenchValidationError, match="floor"):
            validate_payload("engine", payload)
        # A smoke payload runs the lane at toy scale: parity still
        # gates, the absolute speedup floor is explicitly waived.
        payload["config"] = {"smoke": True}
        validate_payload("engine", payload)


class TestSystemReportValidation:
    def fresh_report(self, operation="apply_changes"):
        """A real report from a real (tiny) system run."""
        from repro.config import SystemConfig
        from repro.core.eve import EVESystem
        from repro.misd.statistics import RelationStatistics
        from repro.relational.relation import Relation
        from repro.relational.schema import Schema
        from repro.space.changes import DeleteRelation

        eve = EVESystem(config=SystemConfig.fast())
        eve.add_source("IS1")
        eve.add_source("IS2")
        eve.register_relation(
            "IS1",
            Relation(Schema("R", ["A"]), [(1,)]),
            RelationStatistics(cardinality=1),
        )
        eve.register_relation(
            "IS2",
            Relation(Schema("M", ["A"]), [(1,)]),
            RelationStatistics(cardinality=1),
        )
        eve.mkb.add_equivalence("R", "M", ["A"])
        eve.define_view(
            "CREATE VIEW V (VE = '~') AS SELECT R.A (AR = true) "
            "FROM R (RR = true)"
        )
        if operation == "apply_changes":
            eve.apply_changes([DeleteRelation("IS1", "R")])
        else:
            eve.apply_updates([("R", "insert", (2,))])
        return eve.last_report.to_dict()

    @pytest.mark.parametrize(
        "operation", ["apply_changes", "apply_updates"]
    )
    def test_real_reports_validate(self, operation):
        validate_system_report(self.fresh_report(operation))

    def test_wrong_schema_version_rejected(self):
        report = self.fresh_report()
        report["schema_version"] = 99
        with pytest.raises(BenchValidationError, match="schema_version"):
            validate_system_report(report)

    def test_unknown_operation_rejected(self):
        report = self.fresh_report()
        report["operation"] = "apply_vibes"
        with pytest.raises(BenchValidationError, match="operation"):
            validate_system_report(report)

    def test_survival_totals_enforced(self):
        report = self.fresh_report()
        report["synchronization"]["survived"] = 7
        with pytest.raises(BenchValidationError, match="survived"):
            validate_system_report(report)

    def test_qc_survival_consistency_enforced(self):
        report = self.fresh_report()
        report["synchronization"]["views"][0]["qc"] = None
        with pytest.raises(BenchValidationError, match="mismatch"):
            validate_system_report(report)

    def test_flush_totals_enforced(self):
        report = self.fresh_report("apply_updates")
        report["maintenance"]["updates"] += 1
        with pytest.raises(BenchValidationError, match="flush"):
            validate_system_report(report)

    def test_serving_section_required(self):
        report = self.fresh_report()
        report.pop("serving")
        with pytest.raises(BenchValidationError, match="serving"):
            validate_system_report(report)

    def test_serving_counters_must_be_nonnegative(self):
        report = self.fresh_report()
        report["serving"]["published"] = -1
        with pytest.raises(BenchValidationError, match="serving"):
            validate_system_report(report)

    def test_disabled_serving_plane_publishes_nothing(self):
        report = self.fresh_report()
        report["serving"] = {
            "enabled": False,
            "version": 0,
            "published": 2,
            "staged": 0,
            "copied": 0,
            "pins": 0,
        }
        with pytest.raises(BenchValidationError, match="disabled"):
            validate_system_report(report)

    def test_missing_plans_section_rejected(self):
        report = self.fresh_report()
        report.pop("plans")
        with pytest.raises(BenchValidationError, match="plans"):
            validate_system_report(report)

    def test_plans_total_must_cover_captured(self):
        report = self.fresh_report()
        assert report["plans"]["views"], "expected a captured plan"
        report["plans"]["total"] = 0
        with pytest.raises(BenchValidationError, match="total"):
            validate_system_report(report)

    def test_unknown_plan_kind_rejected(self):
        report = self.fresh_report()
        report["plans"]["views"][0]["kind"] = "apply_vibes"
        with pytest.raises(BenchValidationError, match="kind"):
            validate_system_report(report)

    def test_plan_access_vocabulary_enforced(self):
        report = self.fresh_report()
        plan = report["plans"]["views"][0]
        assert plan["steps"], "expected plan steps"
        plan["steps"][0]["access"] = "teleport"
        with pytest.raises(BenchValidationError, match="access"):
            validate_system_report(report)

    def test_missing_report_fails_the_bench_payload(self):
        payload = committed("scheduler")
        payload.pop("system_report", None)
        with pytest.raises(BenchValidationError, match="system_report"):
            validate_payload("scheduler", payload)


class TestRegressionGate:
    def baseline(self):
        return {
            "config": {"smoke": False},
            "parallel_storm": {"speedup": 6.0},
            "sharded_storm": {"workers_speedup": 4.0},
        }

    def test_within_tolerance_passes(self):
        current = {
            "config": {"smoke": False},
            "parallel_storm": {"speedup": 4.5},
            "sharded_storm": {"workers_speedup": 3.5},
        }
        status, messages = check_regression(
            "scheduler", current, self.baseline()
        )
        assert status == "ok"
        assert any("OK" in message for message in messages)

    def test_large_regression_fails(self):
        current = {
            "config": {"smoke": False},
            "parallel_storm": {"speedup": 2.0},
            "sharded_storm": {"workers_speedup": 4.0},
        }
        status, messages = check_regression(
            "scheduler", current, self.baseline()
        )
        assert status == "fail"
        assert any("regressed" in message for message in messages)

    def test_smoke_vs_full_is_an_explicit_skip(self):
        current = {
            "config": {"smoke": True},
            "parallel_storm": {"speedup": 0.5},
        }
        status, messages = check_regression(
            "scheduler", current, self.baseline()
        )
        assert status == "skip"
        assert any("not comparable" in message for message in messages)

    def test_missing_gated_field_fails_loudly(self):
        status, _ = check_regression(
            "scheduler", {"config": {"smoke": False}}, self.baseline()
        )
        assert status == "fail"

    def test_payloads_without_config_count_as_full_runs(self):
        assert not is_smoke({})
        status, _ = check_regression(
            "scheduler",
            {
                "parallel_storm": {"speedup": 5.9},
                "sharded_storm": {"workers_speedup": 4.1},
            },
            self.baseline(),
        )
        assert status == "ok"

    def test_committed_files_pass_the_gate_against_themselves(self):
        for name in GATED_SPEEDUPS:
            payload = committed(name)
            status, _ = check_regression(name, payload, payload)
            assert status == "ok"
