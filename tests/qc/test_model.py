"""Unit tests for the QC-Model ranking (Eq. 26)."""

import pytest

from repro.errors import EvaluationError
from repro.qc.model import QCModel, qc_score
from repro.qc.params import TradeoffParameters
from repro.qc.workload import WorkloadModel, WorkloadSpec
from repro.space.changes import DeleteRelation
from repro.sync.synchronizer import ViewSynchronizer
from repro.workloadgen.scenarios import build_cardinality_scenario


@pytest.fixture(scope="module")
def experiment4():
    """The Experiment 4 candidate set, synchronized once per module."""
    scenario = build_cardinality_scenario()
    scenario.space.delete_relation("R2")
    synchronizer = ViewSynchronizer(scenario.space.mkb)
    rewritings = synchronizer.synchronize(
        scenario.view, DeleteRelation("IS1", "R2")
    )
    rewritings.sort(key=lambda r: r.moves[-1].new_relation)
    named = [r.renamed(f"V{i + 1}") for i, r in enumerate(rewritings)]
    return scenario, named


class TestQCScore:
    def test_eq26(self):
        params = TradeoffParameters()
        assert qc_score(0.0, 0.0, params) == 1.0
        assert qc_score(1.0, 1.0, params) == 0.0
        assert qc_score(0.5, 0.0, params) == pytest.approx(0.55)

    def test_perfect_score_needs_zero_cost_weight(self):
        params = TradeoffParameters().with_quality_weight(1.0)
        assert qc_score(0.0, 1.0, params) == 1.0


class TestEvaluation:
    def test_table4_case1_values(self, experiment4):
        """All five QC values of Table 4, Case 1, to 5 decimals."""
        scenario, rewritings = experiment4
        model = QCModel(scenario.space.mkb, TradeoffParameters())
        evaluations = model.evaluate(rewritings, updated_relation="R1")
        by_name = {e.name: e for e in evaluations}
        # Note: the paper's DD column prints 0.027/0.045 for V4/V5, but its
        # own QC values (0.898/0.855) arithmetically require 0.03/0.05 —
        # we match the QC numbers, which are the ones the ranking used.
        expected = {
            "V1": (0.075, 0.9325, 3),
            "V2": (0.0375, 0.94125, 2),
            "V3": (0.0, 0.95, 1),
            "V4": (0.03, 0.898, 4),
            "V5": (0.05, 0.855, 5),
        }
        for name, (dd, qc, rank) in expected.items():
            evaluation = by_name[name]
            assert evaluation.quality.dd == pytest.approx(dd, abs=1e-6)
            assert evaluation.qc == pytest.approx(qc, abs=1e-5)
            assert evaluation.rank == rank

    def test_case2_and_case3_prefer_v1(self, experiment4):
        scenario, rewritings = experiment4
        for weight in (0.75, 0.5):
            model = QCModel(
                scenario.space.mkb,
                TradeoffParameters().with_quality_weight(weight),
            )
            best = model.best(rewritings, updated_relation="R1")
            assert best.name == "V1"

    def test_superset_chain_always_ordered(self, experiment4):
        """V3 > V4 > V5 under every trade-off setting (Sec. 7.4 bullet 1)."""
        scenario, rewritings = experiment4
        for weight in (0.9, 0.75, 0.5, 0.25, 0.1):
            model = QCModel(
                scenario.space.mkb,
                TradeoffParameters().with_quality_weight(weight),
            )
            evaluations = model.evaluate(rewritings, updated_relation="R1")
            ranks = {e.name: e.rank for e in evaluations}
            assert ranks["V3"] < ranks["V4"] < ranks["V5"]

    def test_ranks_are_dense_and_sorted(self, experiment4):
        scenario, rewritings = experiment4
        model = QCModel(scenario.space.mkb)
        evaluations = model.evaluate(rewritings, updated_relation="R1")
        assert [e.rank for e in evaluations] == [1, 2, 3, 4, 5]
        scores = [e.qc for e in evaluations]
        assert scores == sorted(scores, reverse=True)

    def test_workload_m1_normalization_invariance(self, experiment4):
        """Table 5: M1 changes absolute costs but not normalized ones."""
        scenario, rewritings = experiment4
        model = QCModel(scenario.space.mkb)
        single = model.evaluate(rewritings, updated_relation="R1")
        m1 = model.evaluate(
            rewritings,
            workload=WorkloadSpec(WorkloadModel.M1_PROPORTIONAL, 0.01),
            updated_relation="R1",
        )
        single_by_name = {e.name: e for e in single}
        for evaluation in m1:
            counterpart = single_by_name[evaluation.name]
            assert evaluation.qc == pytest.approx(counterpart.qc, abs=1e-4)
            assert evaluation.rank == counterpart.rank

    def test_best_requires_candidates(self, experiment4):
        scenario, _ = experiment4
        model = QCModel(scenario.space.mkb)
        with pytest.raises(EvaluationError):
            model.best([])

    def test_unpriceable_rewriting_reports_relation(self, experiment4):
        scenario, rewritings = experiment4
        model = QCModel(scenario.space.mkb)
        from repro.esql.parser import parse_view
        from repro.sync.rewriting import Rewriting

        ghost_view = parse_view("CREATE VIEW G AS SELECT Ghost.A FROM Ghost")
        ghost = Rewriting(ghost_view, ghost_view)
        with pytest.raises(EvaluationError) as excinfo:
            model.evaluate([ghost])
        assert "Ghost" in str(excinfo.value)


class TestExactEvaluation:
    def test_exact_path_agrees_on_ranking_direction(self):
        """Materialized counting must rank the S-chain like the estimate."""
        scenario = build_cardinality_scenario(populate=True)
        original_relations = dict(scenario.original_relations)
        scenario.space.delete_relation("R2")
        synchronizer = ViewSynchronizer(scenario.space.mkb)
        rewritings = synchronizer.synchronize(
            scenario.view, DeleteRelation("IS1", "R2")
        )
        rewritings.sort(key=lambda r: r.moves[-1].new_relation)
        named = [r.renamed(f"V{i + 1}") for i, r in enumerate(rewritings)]
        model = QCModel(
            scenario.space.mkb,
            TradeoffParameters().with_quality_weight(1.0),
        )
        current = scenario.space.relations()
        evaluations = model.evaluate_exact(
            named, original_relations, current, updated_relation="R1"
        )
        ranks = {e.name: e.rank for e in evaluations}
        # S3 = R2 exactly, so V3 must win on pure quality.
        assert ranks["V3"] == 1
        assert ranks["V3"] < ranks["V4"] < ranks["V5"]
