"""Unit tests for view-size and view-overlap estimation (Example 4)."""

import pytest

from repro.esql.parser import parse_view
from repro.misd.mkb import MetaKnowledgeBase
from repro.misd.statistics import SpaceStatistics
from repro.qc.view_size import (
    ExtentNumbers,
    estimate_extent_numbers,
    estimate_view_cardinality,
)
from repro.relational.schema import Schema
from repro.sync.rewriting import (
    DropAttributeMove,
    ExtentRelationship,
    ReplaceRelationMove,
    Rewriting,
)
from repro.relational.expressions import AttributeRef


@pytest.fixture
def stats():
    s = SpaceStatistics(join_selectivity=0.005)
    s.register_simple("R", 400, 100, 0.5)
    s.register_simple("S", 2000, 100, 0.5)
    s.register_simple("T", 3000, 100, 0.5)
    return s


@pytest.fixture
def mkb(stats):
    base = MetaKnowledgeBase(stats)
    base.register_relation(Schema("R", ["A", "B"]), "IS1")
    base.register_relation(Schema("S", ["A", "B"]), "IS2")
    base.register_relation(Schema("T", ["A", "C"]), "IS3")
    return base


class TestViewCardinality:
    def test_single_relation(self, stats):
        view = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        assert estimate_view_cardinality(view, stats) == 400

    def test_join_applies_js_per_join_clause(self, stats):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R, T WHERE R.A = T.A"
        )
        assert estimate_view_cardinality(view, stats) == pytest.approx(
            0.005 * 400 * 3000
        )

    def test_selection_applies_local_selectivity(self, stats):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R WHERE R.B > 10"
        )
        assert estimate_view_cardinality(view, stats) == pytest.approx(200)

    def test_mixed_clauses(self, stats):
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R, T "
            "WHERE R.A = T.A AND T.C > 0"
        )
        assert estimate_view_cardinality(view, stats) == pytest.approx(
            0.005 * 400 * 3000 * 0.5
        )


class TestExtentNumbers:
    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            ExtentNumbers(-1, 0, 0)

    def test_pure_drop_equal_extent(self, mkb):
        original = parse_view(
            "CREATE VIEW V AS SELECT R.A, R.B (AD = true) FROM R"
        )
        rewriting = Rewriting(
            original,
            original.dropping_select_item("B"),
            (DropAttributeMove("B", AttributeRef("B", "R")),),
            ExtentRelationship.EQUAL,
        )
        numbers = estimate_extent_numbers(rewriting, mkb)
        assert numbers.original == numbers.overlap == 400

    def test_superset_rewriting_overlap_is_original(self, mkb):
        original = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R WHERE (R.B > 1) (CD = true)"
        )
        rewriting = Rewriting(
            original,
            original.dropping_where_item(0),
            (),
            ExtentRelationship.SUPERSET,
        )
        numbers = estimate_extent_numbers(rewriting, mkb)
        assert numbers.original == pytest.approx(200)
        assert numbers.rewriting == pytest.approx(400)
        assert numbers.overlap == pytest.approx(200)

    def test_unknown_without_replacement_assumes_disjoint(self, mkb):
        original = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        rewriting = Rewriting(
            original, original, (), ExtentRelationship.UNKNOWN
        )
        numbers = estimate_extent_numbers(rewriting, mkb)
        assert numbers.overlap == 0
        assert not numbers.exact

    def test_replacement_uses_pc_overlap(self, mkb):
        mkb.add_containment("R", "S", ["A", "B"])
        original = parse_view(
            "CREATE VIEW V AS SELECT R.A (AR = true) FROM R (RR = true)"
        )
        pc = mkb.pc_constraint_between("R", "S")
        rewriting = Rewriting(
            original,
            original.replacing_relation("R", "S"),
            (ReplaceRelationMove("R", "S", pc),),
            ExtentRelationship.SUPERSET,
        )
        numbers = estimate_extent_numbers(rewriting, mkb)
        assert numbers.original == pytest.approx(400)
        assert numbers.rewriting == pytest.approx(2000)
        assert numbers.overlap == pytest.approx(400)  # |R ∩ S| = |R|

    def test_replacement_without_pc_means_zero_overlap(self, mkb):
        original = parse_view(
            "CREATE VIEW V AS SELECT R.A (AR = true) FROM R (RR = true)"
        )
        # Forge a replacement move with a constraint the MKB doesn't hold.
        from repro.misd.constraints import (
            PCConstraint,
            PCRelationship,
            RelationFragment,
        )
        phantom = PCConstraint(
            RelationFragment("R", ("A",)),
            RelationFragment("S", ("A",)),
            PCRelationship.EQUIVALENT,
        )
        rewriting = Rewriting(
            original,
            original.replacing_relation("R", "S"),
            (ReplaceRelationMove("R", "S", phantom),),
            ExtentRelationship.UNKNOWN,
        )
        numbers = estimate_extent_numbers(rewriting, mkb)
        assert numbers.overlap == 0
        assert not numbers.exact

    def test_example4_structure(self, mkb):
        """|V ∩ V1| = js * |R ∩ S| * |T| with T the surviving join partner."""
        mkb.add_containment("R", "S", ["A", "B"])
        original = parse_view(
            "CREATE VIEW V AS SELECT R.A (AR = true), T.C "
            "FROM R (RR = true), T WHERE (R.A = T.A) (CR = true)"
        )
        pc = mkb.pc_constraint_between("R", "S")
        rewriting = Rewriting(
            original,
            original.replacing_relation("R", "S"),
            (ReplaceRelationMove("R", "S", pc),),
            ExtentRelationship.SUPERSET,
        )
        numbers = estimate_extent_numbers(rewriting, mkb)
        js = 0.005
        assert numbers.rewriting == pytest.approx(js * 2000 * 3000)
        assert numbers.original == pytest.approx(js * 400 * 3000)
        assert numbers.overlap == pytest.approx(js * 400 * 3000)
