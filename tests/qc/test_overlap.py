"""Unit tests for PC-based overlap estimation — all twelve Fig. 9/10 cases."""

import pytest

from repro.esql.parser import parse_condition_clause
from repro.misd.constraints import (
    PCConstraint,
    PCRelationship,
    RelationFragment,
)
from repro.misd.mkb import MetaKnowledgeBase
from repro.misd.statistics import SpaceStatistics
from repro.qc.overlap import (
    NO_OVERLAP,
    estimate_overlap,
    fragment_cardinality,
    overlap_between,
)
from repro.relational.expressions import Condition
from repro.relational.schema import Schema


@pytest.fixture
def stats():
    s = SpaceStatistics()
    s.register_simple("R1", cardinality=1000, selectivity=0.4)
    s.register_simple("R2", cardinality=2000, selectivity=0.25)
    return s


def make_pc(relationship, left_selective, right_selective):
    left_condition = (
        Condition([parse_condition_clause("R1.A > 0")])
        if left_selective
        else Condition.true()
    )
    right_condition = (
        Condition([parse_condition_clause("R2.A > 0")])
        if right_selective
        else Condition.true()
    )
    return PCConstraint(
        RelationFragment("R1", ("A",), left_condition),
        RelationFragment("R2", ("A",), right_condition),
        relationship,
    )


class TestFragmentCardinality:
    def test_full(self, stats):
        assert fragment_cardinality("R1", False, stats) == 1000

    def test_selective(self, stats):
        assert fragment_cardinality("R1", True, stats) == 400


class TestTwelveCases:
    """Fig. 10's table: (selection pattern, REL) -> (size, exactness)."""

    # no/no row: all exact.
    def test_no_no_equivalent(self, stats):
        e = estimate_overlap(make_pc(PCRelationship.EQUIVALENT, False, False), stats)
        assert (e.size, e.exact) == (1000, True)

    def test_no_no_subset(self, stats):
        e = estimate_overlap(make_pc(PCRelationship.SUBSET, False, False), stats)
        assert (e.size, e.exact) == (1000, True)  # |R1|

    def test_no_no_superset(self, stats):
        e = estimate_overlap(make_pc(PCRelationship.SUPERSET, False, False), stats)
        assert (e.size, e.exact) == (2000, True)  # |R2|

    # no/yes row: superset case is a minimum (asterisk in Fig. 9).
    def test_no_yes_equivalent(self, stats):
        e = estimate_overlap(make_pc(PCRelationship.EQUIVALENT, False, True), stats)
        assert (e.size, e.exact) == (500, True)  # min(|R1|, s2|R2|)

    def test_no_yes_subset(self, stats):
        e = estimate_overlap(make_pc(PCRelationship.SUBSET, False, True), stats)
        assert (e.size, e.exact) == (1000, True)

    def test_no_yes_superset_is_minimum(self, stats):
        e = estimate_overlap(make_pc(PCRelationship.SUPERSET, False, True), stats)
        assert (e.size, e.exact) == (500, False)  # >= s2|R2|

    # yes/no row: subset case is a minimum.
    def test_yes_no_equivalent(self, stats):
        e = estimate_overlap(make_pc(PCRelationship.EQUIVALENT, True, False), stats)
        assert (e.size, e.exact) == (400, True)

    def test_yes_no_subset_is_minimum(self, stats):
        e = estimate_overlap(make_pc(PCRelationship.SUBSET, True, False), stats)
        assert (e.size, e.exact) == (400, False)  # >= s1|R1|

    def test_yes_no_superset(self, stats):
        e = estimate_overlap(make_pc(PCRelationship.SUPERSET, True, False), stats)
        assert (e.size, e.exact) == (2000, True)

    # yes/yes row: everything is a minimum.
    def test_yes_yes_equivalent_is_minimum(self, stats):
        e = estimate_overlap(make_pc(PCRelationship.EQUIVALENT, True, True), stats)
        assert (e.size, e.exact) == (400, False)

    def test_yes_yes_subset_is_minimum(self, stats):
        e = estimate_overlap(make_pc(PCRelationship.SUBSET, True, True), stats)
        assert (e.size, e.exact) == (400, False)

    def test_yes_yes_superset_is_minimum(self, stats):
        e = estimate_overlap(make_pc(PCRelationship.SUPERSET, True, True), stats)
        assert (e.size, e.exact) == (500, False)

    def test_exactly_five_inexact_cases(self, stats):
        """The paper marks five cases with asterisks (Sec. 5.4.3)."""
        inexact = 0
        for relationship in PCRelationship:
            for left in (False, True):
                for right in (False, True):
                    estimate = estimate_overlap(
                        make_pc(relationship, left, right), stats
                    )
                    if not estimate.exact:
                        inexact += 1
        assert inexact == 5


class TestOverlapBetween:
    @pytest.fixture
    def mkb(self, stats):
        base = MetaKnowledgeBase(stats)
        base.register_relation(Schema("R1", ["A"]), "IS1")
        base.register_relation(Schema("R2", ["A"]), "IS2")
        return base

    def test_no_constraint_means_no_overlap(self, mkb):
        assert overlap_between("R1", "R2", mkb) is NO_OVERLAP
        assert overlap_between("R1", "R2", mkb).size == 0

    def test_constraint_found_and_oriented(self, mkb, stats):
        mkb.add_containment("R1", "R2", ["A"])
        estimate = overlap_between("R1", "R2", mkb)
        assert estimate.size == 1000

    def test_reverse_orientation_found(self, mkb):
        mkb.add_containment("R1", "R2", ["A"])
        estimate = overlap_between("R2", "R1", mkb)
        assert estimate.size == 1000  # |R1| either way

    def test_survives_relation_deletion(self, mkb):
        mkb.add_containment("R1", "R2", ["A"])
        mkb.on_relation_deleted("R1")
        estimate = overlap_between("R1", "R2", mkb)
        assert estimate.size == 1000

    def test_best_of_multiple_constraints(self, mkb, stats):
        from repro.misd.constraints import PCConstraint, RelationFragment

        mkb.add_pc_constraint(
            PCConstraint(
                RelationFragment(
                    "R1", ("A",),
                    Condition([parse_condition_clause("R1.A > 0")]),
                ),
                RelationFragment("R2", ("A",)),
                PCRelationship.SUBSET,
            )
        )
        mkb.add_containment("R1", "R2", ["A"])
        estimate = overlap_between("R1", "R2", mkb)
        assert estimate.size == 1000  # the unselective constraint wins


class TestTransitiveOverlap:
    """2-hop constraint paths (the transitive-replacement situation)."""

    @pytest.fixture
    def mkb3(self, stats):
        stats.register_simple("R3", cardinality=1500, selectivity=0.5)
        base = MetaKnowledgeBase(stats)
        base.register_relation(Schema("R1", ["A"]), "IS1")
        base.register_relation(Schema("R2", ["A"]), "IS2")
        base.register_relation(Schema("R3", ["A"]), "IS3")
        return base

    def test_two_hop_containment_chain(self, mkb3):
        # R1 ⊆ R2 ⊆ R3: |R1 ∩ R3| >= |R1∩R2| + |R2∩R3| - |R2|
        #             = 1000 + 2000 - 2000 = 1000.
        mkb3.add_containment("R1", "R2", ["A"])
        mkb3.add_containment("R2", "R3", ["A"])
        estimate = overlap_between("R1", "R3", mkb3)
        assert estimate.size == 1000
        assert not estimate.exact

    def test_shared_ancestor_pattern(self, mkb3):
        # R2 ⊇ R1 and R1 ⊆ R3 (Experiment 1's shape, with R1 the deleted
        # ancestor): |R2 ∩ R3| >= |R2∩R1| + |R1∩R3| - |R1| = |R1|.
        mkb3.add_containment("R1", "R2", ["A"])
        mkb3.add_containment("R1", "R3", ["A"])
        estimate = overlap_between("R2", "R3", mkb3)
        assert estimate.size == 1000
        assert not estimate.exact

    def test_two_hop_survives_intermediate_deletion(self, mkb3):
        mkb3.add_containment("R1", "R2", ["A"])
        mkb3.add_containment("R1", "R3", ["A"])
        mkb3.on_relation_deleted("R1")
        estimate = overlap_between("R2", "R3", mkb3)
        assert estimate.size == 1000

    def test_disjoint_fragments_bound_clamps_to_zero(self, mkb3):
        # Small overlaps on both hops through a big intermediate: the
        # inclusion-exclusion bound goes negative and clamps to 0.
        from repro.misd.constraints import PCConstraint, RelationFragment

        selective = Condition([parse_condition_clause("R2.A > 0")])
        mkb3.add_pc_constraint(
            PCConstraint(
                RelationFragment("R1", ("A",)),
                RelationFragment("R2", ("A",), selective),
                PCRelationship.SUPERSET,
            )
        )
        mkb3.add_pc_constraint(
            PCConstraint(
                RelationFragment(
                    "R2", ("A",),
                    Condition([parse_condition_clause("R2.A > 0")]),
                ),
                RelationFragment("R3", ("A",)),
                PCRelationship.SUBSET,
            )
        )
        estimate = overlap_between("R1", "R3", mkb3)
        # 500 + 500 - 2000 < 0 -> clamped.
        assert estimate.size == 0.0

    def test_direct_constraint_preferred_over_path(self, mkb3):
        mkb3.add_containment("R1", "R2", ["A"])
        mkb3.add_containment("R2", "R3", ["A"])
        mkb3.add_containment("R1", "R3", ["A"])  # direct, exact
        estimate = overlap_between("R1", "R3", mkb3)
        assert estimate.exact
        assert estimate.size == 1000
