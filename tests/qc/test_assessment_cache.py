"""Unit tests for the memoized rewriting-assessment cache."""

import pytest

from repro.core.eve import EVESystem
from repro.esql.parser import parse_view
from repro.qc.assessment_cache import (
    AssessmentCache,
    fingerprint_rewriting,
    fingerprint_view,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sync.rewriting import ExtentRelationship, Rewriting


def rewriting_of(text, original_text=None):
    view = parse_view(text)
    original = parse_view(original_text) if original_text else view
    return Rewriting(original, view, (), ExtentRelationship.EQUAL)


class TestFingerprints:
    def test_clause_order_is_canonicalized(self):
        a = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R, S "
            "WHERE R.A = S.A AND R.B > 2"
        )
        b = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R, S "
            "WHERE R.B > 2 AND R.A = S.A"
        )
        assert fingerprint_view(a) == fingerprint_view(b)

    def test_operand_order_is_canonicalized(self):
        a = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R, S WHERE R.A = S.A"
        )
        b = parse_view(
            "CREATE VIEW V AS SELECT R.A FROM R, S WHERE S.A = R.A"
        )
        assert fingerprint_view(a) == fingerprint_view(b)

    def test_from_order_is_preserved(self):
        # FROM order feeds the maintenance plan, so it must distinguish.
        a = parse_view("CREATE VIEW V AS SELECT R.A FROM R, S")
        b = parse_view("CREATE VIEW V AS SELECT R.A FROM S, R")
        assert fingerprint_view(a) != fingerprint_view(b)

    def test_flags_distinguish(self):
        a = parse_view("CREATE VIEW V AS SELECT R.A (AD = true) FROM R")
        b = parse_view("CREATE VIEW V AS SELECT R.A (AD = false) FROM R")
        assert fingerprint_view(a) != fingerprint_view(b)

    def test_rewriting_fingerprint_covers_relationship(self):
        base = "CREATE VIEW V AS SELECT R.A FROM R"
        equal = Rewriting(
            parse_view(base), parse_view(base), (), ExtentRelationship.EQUAL
        )
        superset = Rewriting(
            parse_view(base), parse_view(base), (), ExtentRelationship.SUPERSET
        )
        assert fingerprint_rewriting(equal) != fingerprint_rewriting(superset)


class TestMemoization:
    def test_memo_computes_once(self):
        cache = AssessmentCache()
        calls = []
        for _ in range(3):
            value = cache.memo("k", lambda: calls.append(1) or 42)
        assert value == 42
        assert len(calls) == 1
        assert cache.hits == 2 and cache.misses == 1

    def test_invalidate_forgets(self):
        cache = AssessmentCache()
        cache.memo("k", lambda: 1)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.memo("k", lambda: 2) == 2

    def test_eviction_bounds_size(self):
        cache = AssessmentCache(max_entries=16)
        for i in range(100):
            cache.memo(i, lambda i=i: i)
        assert len(cache) <= 16

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            AssessmentCache(max_entries=0)

    def test_quality_entry_keyed_on_statistics(self):
        cache = AssessmentCache()
        rw = rewriting_of("CREATE VIEW V AS SELECT R.A FROM R")
        first = cache.quality(rw, ("stats", 1), lambda: "old")
        moved = cache.quality(rw, ("stats", 2), lambda: "new")
        assert (first, moved) == ("old", "new")


class TestSystemWiring:
    def _system(self):
        eve = EVESystem()
        eve.add_source("IS1")
        eve.add_source("IS2")
        eve.register_relation(
            "IS1", Relation(Schema("R", ["A", "B"]), [(1, 10), (2, 20)])
        )
        eve.register_relation(
            "IS2", Relation(Schema("T", ["A", "B"]), [(1, 10), (3, 30)])
        )
        eve.mkb.add_equivalence("R", "T", ["A", "B"])
        return eve

    def test_synchronization_populates_cache(self):
        eve = self._system()
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A (AR = true), R.B (AR = true) "
            "FROM R (RR = true)"
        )
        eve.space.delete_relation("R")
        assert eve.is_alive("V")
        # The capability change invalidated, then ranking repopulated.
        assert len(eve.assessment_cache) > 0

    def test_repeated_ranking_hits_cache(self):
        eve = self._system()
        eve.define_view(
            "CREATE VIEW V AS SELECT R.A (AR = true), R.B (AR = true) "
            "FROM R (RR = true)"
        )
        eve.space.delete_relation("R")
        evaluations = eve.synchronization_log[0].evaluations
        eve.assessment_cache.clear_statistics()
        again = eve.rank_rewritings([e.rewriting for e in evaluations])
        assert eve.assessment_cache.hits > 0
        assert [e.name for e in again] == [e.name for e in evaluations]
        assert [e.qc for e in again] == [e.qc for e in evaluations]

    def test_capability_change_invalidates_even_without_autosync(self):
        eve = self._system()
        eve.auto_synchronize = False
        eve.assessment_cache.memo("sentinel", lambda: 1)
        version = eve.assessment_cache.version
        eve.space.delete_relation("T")
        assert eve.assessment_cache.version > version
        assert len(eve.assessment_cache) == 0

    def test_register_relation_invalidates(self):
        eve = self._system()
        eve.assessment_cache.memo("sentinel", lambda: 1)
        eve.register_relation(
            "IS1", Relation(Schema("U", ["A"]), [(1,)])
        )
        assert len(eve.assessment_cache) == 0

    def test_standalone_model_sees_mkb_mutations(self):
        # A QCModel with its own cache (no EVESystem invalidation hook)
        # must not serve pre-change scores after the MKB gains knowledge.
        from repro.qc.model import QCModel
        from repro.space.space import InformationSpace
        from repro.sync.synchronizer import ViewSynchronizer

        space = InformationSpace()
        space.add_source("IS1")
        space.add_source("IS2")
        space.register_relation(
            "IS1", Relation(Schema("R", ["A", "B"]), [(1, 10)])
        )
        space.register_relation(
            "IS2", Relation(Schema("T", ["A", "B"]), [(1, 10)])
        )
        space.mkb.add_containment("R", "T", ["A", "B"])
        view = parse_view(
            "CREATE VIEW V AS SELECT R.A (AR = true), R.B (AR = true) "
            "FROM R (RR = true)"
        )
        change = space.delete_relation("R")
        rewritings = ViewSynchronizer(space.mkb).synchronize(view, change)
        cache = AssessmentCache()
        model = QCModel(space.mkb, cache=cache)
        model.evaluate(rewritings)
        misses_after_first = cache.misses
        model.evaluate(rewritings)
        assert cache.misses == misses_after_first  # warm: pure hits
        # Any MKB mutation moves its version, so old entries go stale.
        space.register_relation(
            "IS2", Relation(Schema("U", ["A"]), [(1,)])
        )
        model.evaluate(rewritings)
        assert cache.misses > misses_after_first  # recomputed, not served
