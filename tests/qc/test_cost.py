"""Unit tests for the cost model, pinned to the paper's own numbers."""

import pytest

from repro.errors import EvaluationError
from repro.esql.parser import parse_view
from repro.misd.statistics import SpaceStatistics
from repro.qc.cost import (
    MaintenancePlan,
    SourceGroup,
    assess_cost,
    cf_bytes,
    cf_bytes_uniform,
    cf_io,
    cf_messages,
    cf_messages_counted,
    full_scan_ios,
    normalize_costs,
    plan_for_view,
)
from repro.qc.params import TradeoffParameters


def uniform_stats(n=6, cardinality=400, tuple_size=100, selectivity=0.5,
                  js=0.005, bfr=10):
    stats = SpaceStatistics(join_selectivity=js, blocking_factor=bfr)
    for index in range(n):
        stats.register_simple(f"R{index}", cardinality, tuple_size, selectivity)
    return stats


def plan_one_site(n=6):
    return MaintenancePlan(
        (SourceGroup("IS1", tuple(f"R{i}" for i in range(n))),), "R0"
    )


def plan_n_sites(n=6):
    return MaintenancePlan(
        tuple(SourceGroup(f"IS{i}", (f"R{i}",)) for i in range(n)), "R0"
    )


class TestPlan:
    def test_validation(self):
        with pytest.raises(EvaluationError):
            MaintenancePlan((), "R")
        with pytest.raises(EvaluationError):
            MaintenancePlan((SourceGroup("IS1", ("R",)),), "S")
        with pytest.raises(EvaluationError):
            MaintenancePlan(
                (SourceGroup("IS1", ("R",)), SourceGroup("IS2", ("R",))), "R"
            )
        with pytest.raises(EvaluationError):
            SourceGroup("IS1", ())

    def test_counts(self):
        plan = plan_one_site()
        assert plan.source_count == 1
        assert plan.relation_count == 6
        assert plan.first_source_other_relations == tuple(
            f"R{i}" for i in range(1, 6)
        )
        assert plan.joined_relations() == tuple(f"R{i}" for i in range(1, 6))

    def test_queried_sources_skips_lonely_updater(self):
        plan = plan_n_sites(3)
        assert [g.source for g in plan.queried_sources()] == ["IS1", "IS2"]

    def test_plan_for_view(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT A.X, B.Y, C.Z FROM A, B, C "
            "WHERE A.X = B.Y AND B.Y = C.Z"
        )
        owners = {"A": "IS1", "B": "IS2", "C": "IS1"}
        plan = plan_for_view(view, owners, updated_relation="B")
        assert plan.groups[0].source == "IS2"
        assert plan.groups[0].relations == ("B",)
        assert plan.groups[1].relations == ("A", "C")

    def test_plan_for_view_unknown_owner(self):
        view = parse_view("CREATE VIEW V AS SELECT A.X FROM A")
        with pytest.raises(EvaluationError):
            plan_for_view(view, {})

    def test_plan_for_view_bad_updated_relation(self):
        view = parse_view("CREATE VIEW V AS SELECT A.X FROM A")
        with pytest.raises(EvaluationError):
            plan_for_view(view, {"A": "IS1"}, updated_relation="Z")


class TestMessages:
    def test_formula_cases(self):
        # m=1, n1=0
        assert cf_messages(MaintenancePlan((SourceGroup("IS1", ("R0",)),), "R0")) == 0
        # m=1, n1>0
        assert cf_messages(plan_one_site()) == 2
        # m>1, n1=0
        assert cf_messages(plan_n_sites(3)) == 4
        # m>1, n1>0
        plan = MaintenancePlan(
            (SourceGroup("IS1", ("R0", "R1")), SourceGroup("IS2", ("R2",))),
            "R0",
        )
        assert cf_messages(plan) == 4

    def test_counted_convention_matches_table6(self):
        assert cf_messages_counted(plan_one_site()) == 3
        assert cf_messages_counted(plan_n_sites(6)) == 11


class TestBytes:
    def test_single_site_matches_table6(self):
        # Table 6 row V1: 8000 bytes over 10 updates -> 800 per update.
        assert cf_bytes(plan_one_site(), uniform_stats()) == pytest.approx(800)

    def test_six_sites_matches_table6(self):
        # Table 6 row V6: 216000 over 60 updates -> 3600 per update.
        assert cf_bytes(plan_n_sites(6), uniform_stats()) == pytest.approx(3600)

    def test_growth_with_sites(self):
        stats = uniform_stats()
        values = []
        for m in (1, 2, 3, 6):
            if m == 1:
                plan = plan_one_site()
            else:
                sizes = [6 // m + (1 if i < 6 % m else 0) for i in range(m)]
                groups, cursor = [], 0
                for i, size in enumerate(sizes):
                    groups.append(
                        SourceGroup(
                            f"IS{i}",
                            tuple(f"R{j}" for j in range(cursor, cursor + size)),
                        )
                    )
                    cursor += size
                plan = MaintenancePlan(tuple(groups), "R0")
            values.append(cf_bytes(plan, stats))
        assert values == sorted(values)

    def test_uniform_closed_form_agrees_with_iterative(self):
        # Under uniform statistics, Eq. 22 (read with per-relation local
        # selectivities, as the experiment numbers require) must equal the
        # iterative Eq. 21 evaluation for every relation distribution.
        stats = uniform_stats()
        cases = [
            (plan_one_site(), 1, [5]),
            (
                MaintenancePlan(
                    (
                        SourceGroup("IS1", ("R0", "R1", "R2")),
                        SourceGroup("IS2", ("R3", "R4", "R5")),
                    ),
                    "R0",
                ),
                2,
                [2, 3],
            ),
        ]
        for plan, m, counts in cases:
            assert cf_bytes_uniform(m, counts, stats) == pytest.approx(
                cf_bytes(plan, stats)
            )

    def test_uniform_closed_form_footnote12_divergence(self):
        # When the updating source hosts nothing else (n_1 = 0), Eq. 22
        # literally still prices the round trip to it; footnote 12 (and the
        # experiment tables) skip it — the difference is exactly 2s.
        stats = uniform_stats()
        plan = plan_n_sites(6)
        closed = cf_bytes_uniform(6, [0, 1, 1, 1, 1, 1], stats)
        iterative = cf_bytes(plan, stats)
        assert closed - iterative == pytest.approx(2 * 100)

    def test_uniform_requires_counts_per_source(self):
        with pytest.raises(EvaluationError):
            cf_bytes_uniform(2, [5], uniform_stats())


class TestIO:
    def test_full_scan(self):
        assert full_scan_ios("R0", uniform_stats()) == 40

    def test_table6_constant_31(self):
        # Table 6: CF_IO is 31 per update regardless of distribution
        # (1+2+4+8+16 for the five joined relations).
        stats = uniform_stats()
        assert cf_io(plan_one_site(), stats) == pytest.approx(31)
        assert cf_io(plan_n_sites(6), stats) == pytest.approx(31)

    def test_full_scan_caps_probes(self):
        stats = uniform_stats(js=0.5)  # huge join fan-out
        value = cf_io(plan_one_site(2), stats)
        assert value <= full_scan_ios("R1", stats)

    def test_upper_bound_at_least_lower(self):
        stats = uniform_stats()
        plan = plan_one_site()
        assert cf_io(plan, stats, upper=True) >= cf_io(plan, stats)

    def test_experiment4_per_tuple_pricing(self):
        # bfr=1 prices probes per matching tuple: CF_IO = js * |S|.
        stats = SpaceStatistics(join_selectivity=0.005, blocking_factor=1)
        stats.register_simple("R1", 400, 100, 0.5)
        stats.register_simple("S3", 4000, 100, 0.5)
        plan = MaintenancePlan(
            (SourceGroup("IS0", ("R1",)), SourceGroup("IS3", ("S3",))), "R1"
        )
        assert cf_io(plan, stats) == pytest.approx(20)


class TestTotalAndNormalization:
    def test_table4_totals_exact(self):
        """The five Cost column values of Table 4, to one decimal."""
        stats = SpaceStatistics(join_selectivity=0.005, blocking_factor=1)
        stats.register_simple("R1", 400, 100, 0.5)
        expected = {
            "S1": (2000, 842.3),
            "S2": (3000, 1193.3),
            "S3": (4000, 1544.3),
            "S4": (5000, 1895.3),
            "S5": (6000, 2246.3),
        }
        params = TradeoffParameters()
        for name, (cardinality, want) in expected.items():
            stats.register_simple(name, cardinality, 100, 0.5)
            plan = MaintenancePlan(
                (SourceGroup("IS0", ("R1",)), SourceGroup("ISx", (name,))),
                "R1",
            )
            assessment = assess_cost(plan, stats, params)
            assert assessment.total == pytest.approx(want, abs=0.05)

    def test_cost_assessment_arithmetic(self):
        stats = uniform_stats()
        a = assess_cost(plan_one_site(), stats, TradeoffParameters())
        doubled = a.scaled(2)
        assert doubled.total == pytest.approx(2 * a.total)
        summed = a.plus(a)
        assert summed.cf_t == pytest.approx(2 * a.cf_t)

    def test_normalize_costs_eq25(self):
        assert normalize_costs([842.3, 1193.3, 1544.3, 1895.3, 2246.3]) == [
            pytest.approx(x) for x in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]

    def test_normalize_degenerate_sets(self):
        assert normalize_costs([]) == []
        assert normalize_costs([5.0]) == [0.0]
        assert normalize_costs([3.0, 3.0]) == [0.0, 0.0]
