"""The incremental-ranking bounds: quality floor, cost floor, QC ceiling."""

import pytest

from repro.errors import EvaluationError
from repro.qc.model import QCModel
from repro.qc.workload import WorkloadModel, WorkloadSpec
from repro.space.changes import DeleteRelation
from repro.sync.legality import check_legality
from repro.sync.synchronizer import ViewSynchronizer
from repro.workloadgen.scenarios import build_cardinality_scenario


@pytest.fixture(scope="module")
def scenario():
    sc = build_cardinality_scenario()
    synchronizer = ViewSynchronizer(sc.space.mkb)
    candidates = [
        rewriting
        for rewriting in synchronizer.synchronize(
            sc.view, DeleteRelation("IS1", "R2"), include_dominated=True
        )
        if check_legality(rewriting).legal
    ]
    return sc, QCModel(sc.space.mkb), candidates


class TestQualityFloor:
    def test_floor_never_exceeds_full_assessment(self, scenario):
        _, model, candidates = scenario
        for rewriting in candidates:
            assert model.quality_floor(rewriting) <= model.quality_of(
                rewriting
            ).dd

    def test_floor_is_exact_without_extent_divergence(self, scenario):
        # When the extent term vanishes, DD == rho_attr * DD_attr and the
        # floor is tight — the bound loses nothing on pure interface loss.
        _, model, candidates = scenario
        tight = [
            rewriting
            for rewriting in candidates
            if model.quality_of(rewriting).dd_ext == 0.0
        ]
        assert tight, "scenario should include an extent-preserving rewriting"
        for rewriting in tight:
            assert model.quality_floor(rewriting) == model.quality_of(
                rewriting
            ).dd


class TestQcUpperBound:
    def test_bound_dominates_actual_qc(self, scenario):
        _, model, candidates = scenario
        for evaluation in model.evaluate(candidates):
            bound = model.qc_upper_bound(
                evaluation.rewriting, evaluation.normalized_cost
            )
            assert bound >= evaluation.qc

    def test_bound_without_cost_knowledge_is_looser(self, scenario):
        _, model, candidates = scenario
        for evaluation in model.evaluate(candidates):
            assert model.qc_upper_bound(
                evaluation.rewriting
            ) >= model.qc_upper_bound(
                evaluation.rewriting, evaluation.normalized_cost
            )


class TestCostLowerBound:
    def test_bound_never_exceeds_cost(self, scenario):
        _, model, candidates = scenario
        for rewriting in candidates:
            for updated in (None, *rewriting.view.relation_names):
                assert (
                    model.cost_lower_bound(
                        rewriting, updated_relation=updated
                    )
                    <= model.cost_of(
                        rewriting, updated_relation=updated
                    ).total
                )

    @pytest.mark.parametrize(
        "model_kind",
        [WorkloadModel.M1_PROPORTIONAL, WorkloadModel.M2_PER_RELATION],
    )
    def test_bound_holds_under_workloads(self, scenario, model_kind):
        _, model, candidates = scenario
        workload = WorkloadSpec(model_kind, 0.01)
        for rewriting in candidates[:8]:
            assert (
                model.cost_lower_bound(rewriting, workload)
                <= model.cost_of(rewriting, workload).total
            )

    def test_unknown_updated_relation_rejected(self, scenario):
        _, model, candidates = scenario
        with pytest.raises(EvaluationError):
            model.cost_lower_bound(
                candidates[0], updated_relation="Nonexistent"
            )

    def test_single_relation_view_prices_notification_only(self):
        from repro.workloadgen.scenarios import build_survival_scenario

        sc = build_survival_scenario()
        synchronizer = ViewSynchronizer(sc.space.mkb)
        model = QCModel(sc.space.mkb)
        sc.space.delete_relation("R")
        single = [
            rewriting
            for rewriting in synchronizer.synchronize(
                sc.view, DeleteRelation("IS1", "R")
            )
            if len(rewriting.view.relation_names) == 1
        ]
        assert single
        statistics = sc.space.mkb.statistics
        for rewriting in single:
            name = rewriting.view.relation_names[0]
            expected = (
                statistics.tuple_size(name) * model.params.cost_t
                + 1 * model.params.cost_m
            )
            assert model.cost_lower_bound(rewriting) == pytest.approx(
                expected
            )
            assert (
                model.cost_lower_bound(rewriting)
                <= model.cost_of(rewriting).total
            )
