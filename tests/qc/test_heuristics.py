"""Unit tests for the Sec. 7.6 pruning heuristics."""

import pytest

from repro.errors import EvaluationError
from repro.misd.mkb import MetaKnowledgeBase
from repro.misd.statistics import SpaceStatistics
from repro.esql.parser import parse_view
from repro.qc.heuristics import (
    closest_size_key,
    default_heuristic_stack,
    fewest_clauses_key,
    fewest_relations_key,
    fewest_sources_key,
    pick_by_heuristics,
    smallest_relations_key,
)
from repro.relational.schema import Schema
from repro.sync.rewriting import Rewriting


@pytest.fixture
def mkb():
    stats = SpaceStatistics()
    stats.register_simple("R", 400)
    stats.register_simple("S", 2000)
    stats.register_simple("T", 3000)
    base = MetaKnowledgeBase(stats)
    base.register_relation(Schema("R", ["A"]), "IS1")
    base.register_relation(Schema("S", ["A"]), "IS1")
    base.register_relation(Schema("T", ["A"]), "IS2")
    return base


def identity(view_text):
    view = parse_view(view_text)
    return Rewriting(view, view)


class TestKeys:
    def test_fewest_sources(self, mkb):
        key = fewest_sources_key(mkb)
        one_site = identity("CREATE VIEW V AS SELECT R.A, S.A AS A2 FROM R, S")
        two_sites = identity("CREATE VIEW V AS SELECT R.A, T.A AS A2 FROM R, T")
        assert key(one_site) == 1
        assert key(two_sites) == 2

    def test_fewest_sources_unknown_owner_counts_separately(self, mkb):
        key = fewest_sources_key(mkb)
        ghost = identity("CREATE VIEW V AS SELECT G.A FROM G")
        assert key(ghost) == 1

    def test_fewest_relations(self):
        key = fewest_relations_key()
        assert key(identity("CREATE VIEW V AS SELECT R.A FROM R")) == 1
        assert key(
            identity("CREATE VIEW V AS SELECT R.A, S.B FROM R, S")
        ) == 2

    def test_smallest_relations(self, mkb):
        key = smallest_relations_key(mkb.statistics)
        assert key(identity("CREATE VIEW V AS SELECT R.A FROM R")) == 400
        assert key(
            identity("CREATE VIEW V AS SELECT R.A, S.A AS A2 FROM R, S")
        ) == 2400

    def test_closest_size_uses_replacement_moves(self, mkb):
        from repro.misd.constraints import (
            PCConstraint,
            PCRelationship,
            RelationFragment,
        )
        from repro.sync.rewriting import ReplaceRelationMove

        original = parse_view(
            "CREATE VIEW V AS SELECT R.A (AR = true) FROM R (RR = true)"
        )
        pc_s = PCConstraint(
            RelationFragment("R", ("A",)),
            RelationFragment("S", ("A",)),
            PCRelationship.SUBSET,
        )
        to_s = Rewriting(
            original,
            original.replacing_relation("R", "S"),
            (ReplaceRelationMove("R", "S", pc_s),),
        )
        key = closest_size_key(mkb.statistics)
        assert key(to_s) == 1600  # |2000 - 400|
        assert key(identity("CREATE VIEW V AS SELECT R.A FROM R")) == 0

    def test_fewest_clauses(self):
        key = fewest_clauses_key()
        bare = identity("CREATE VIEW V AS SELECT R.A FROM R")
        fenced = identity(
            "CREATE VIEW V AS SELECT R.A FROM R WHERE R.A > 1 AND R.A < 9"
        )
        assert key(bare) == 0
        assert key(fenced) == 2


class TestSelection:
    def test_lexicographic_priority(self, mkb):
        small_far = identity("CREATE VIEW V AS SELECT T.A FROM T")
        large_near = identity(
            "CREATE VIEW V AS SELECT R.A, S.A AS A2 FROM R, S"
        )
        # fewest_sources first: both tie at 1 source? T is IS2 alone -> 1,
        # R+S both IS1 -> 1. Tie; next key (smallest relations) decides.
        chosen = pick_by_heuristics(
            [small_far, large_near],
            [fewest_sources_key(mkb), smallest_relations_key(mkb.statistics)],
        )
        assert chosen is large_near  # 2400 > 3000? no: 2400 < 3000

    def test_empty_candidate_set_rejected(self):
        with pytest.raises(EvaluationError):
            pick_by_heuristics([], [fewest_relations_key()])

    def test_default_stack_shape(self, mkb):
        stack = default_heuristic_stack(mkb, mkb.statistics)
        assert len(stack) == 5
        candidate = identity("CREATE VIEW V AS SELECT R.A FROM R")
        chosen = pick_by_heuristics([candidate], stack)
        assert chosen is candidate
