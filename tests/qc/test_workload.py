"""Unit tests for workload models M1-M4."""

import pytest

from repro.errors import EvaluationError
from repro.misd.statistics import SpaceStatistics
from repro.qc.cost import MaintenancePlan, SourceGroup, assess_cost
from repro.qc.params import TradeoffParameters
from repro.qc.workload import (
    WorkloadModel,
    WorkloadSpec,
    aggregate_cost,
)


@pytest.fixture
def stats():
    s = SpaceStatistics()
    s.register_simple("R", 1000)
    s.register_simple("S", 2000)
    s.register_simple("T", 3000)
    return s


@pytest.fixture
def plan():
    return MaintenancePlan(
        (SourceGroup("IS1", ("R", "S")), SourceGroup("IS2", ("T",))), "R"
    )


class TestUpdateCounts:
    def test_m1_proportional_to_size(self, plan, stats):
        spec = WorkloadSpec(WorkloadModel.M1_PROPORTIONAL, rate=0.01)
        counts = spec.update_counts(plan, stats)
        assert counts == {"R": 10, "S": 20, "T": 30}

    def test_m2_constant_per_relation(self, plan, stats):
        spec = WorkloadSpec(WorkloadModel.M2_PER_RELATION, rate=5)
        counts = spec.update_counts(plan, stats)
        assert counts == {"R": 5, "S": 5, "T": 5}

    def test_m3_constant_per_source(self, plan, stats):
        spec = WorkloadSpec(WorkloadModel.M3_PER_SOURCE, rate=10)
        counts = spec.update_counts(plan, stats)
        assert counts == {"R": 5, "S": 5, "T": 10}
        assert spec.total_updates(plan, stats) == 20

    def test_m4_constant_per_rewriting(self, plan, stats):
        spec = WorkloadSpec(WorkloadModel.M4_PER_REWRITING, rate=9)
        counts = spec.update_counts(plan, stats)
        assert counts == {"R": 3, "S": 3, "T": 3}

    def test_negative_rate_rejected(self):
        with pytest.raises(EvaluationError):
            WorkloadSpec(WorkloadModel.M2_PER_RELATION, rate=-1)


class TestAggregateCost:
    def test_weighted_sum_over_origins(self, plan, stats):
        params = TradeoffParameters()
        spec = WorkloadSpec(WorkloadModel.M2_PER_RELATION, rate=1)
        total = aggregate_cost(
            spec, plan, stats, lambda p: assess_cost(p, stats, params)
        )
        # Must equal the sum of per-origin single-update costs.
        expected = 0.0
        for relation in ("R", "S", "T"):
            from repro.qc.workload import _reroot_builder

            rerooted = _reroot_builder(plan)(relation)
            expected += assess_cost(rerooted, stats, params).total
        assert total.total == pytest.approx(expected)

    def test_zero_rate_costs_nothing(self, plan, stats):
        params = TradeoffParameters()
        spec = WorkloadSpec(WorkloadModel.M2_PER_RELATION, rate=0)
        total = aggregate_cost(
            spec, plan, stats, lambda p: assess_cost(p, stats, params)
        )
        assert total.total == 0.0

    def test_m1_scales_linearly_with_rate(self, plan, stats):
        params = TradeoffParameters()
        cost = lambda p: assess_cost(p, stats, params)  # noqa: E731
        low = aggregate_cost(
            WorkloadSpec(WorkloadModel.M1_PROPORTIONAL, 0.01),
            plan, stats, cost,
        )
        high = aggregate_cost(
            WorkloadSpec(WorkloadModel.M1_PROPORTIONAL, 0.02),
            plan, stats, cost,
        )
        assert high.total == pytest.approx(2 * low.total)


class TestReroot:
    def test_reroot_moves_origin_group_first(self, plan):
        from repro.qc.workload import _reroot_builder

        rerooted = _reroot_builder(plan)("T")
        assert rerooted.groups[0].source == "IS2"
        assert rerooted.updated_relation == "T"

    def test_reroot_reorders_within_group(self, plan):
        from repro.qc.workload import _reroot_builder

        rerooted = _reroot_builder(plan)("S")
        assert rerooted.groups[0].relations == ("S", "R")

    def test_reroot_same_origin_is_identity(self, plan):
        from repro.qc.workload import _reroot_builder

        assert _reroot_builder(plan)("R") is plan

    def test_reroot_unknown_relation(self, plan):
        from repro.qc.workload import _reroot_builder

        with pytest.raises(EvaluationError):
            _reroot_builder(plan)("Z")
