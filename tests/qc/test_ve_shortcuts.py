"""Tests for the Eq. 16/17 VE shortcuts (Sec. 5.4.2).

When the view-extent parameter pins the direction ('⊇' or '⊆'), the
overlap is the smaller extent and "none of the expensive set intersection
operations is required" — the shortcut formulas must equal the general
Eq. 15 on the corresponding extent numbers.
"""

import pytest

from repro.qc.params import TradeoffParameters
from repro.qc.quality import (
    dd_ext,
    dd_ext_subset,
    dd_ext_superset,
)
from repro.qc.view_size import ExtentNumbers

PARAMS = TradeoffParameters()


class TestSupersetShortcut:
    def test_equals_general_formula(self):
        # Superset rewriting: overlap = original extent.
        for original, rewriting in [(100, 150), (400, 400), (10, 1000)]:
            shortcut = dd_ext_superset(original, rewriting, PARAMS)
            general = dd_ext(
                ExtentNumbers(original, rewriting, original), PARAMS
            )
            assert shortcut == pytest.approx(general)

    def test_only_d2_contributes(self):
        # Eq. 16's structure: no information is lost, only surplus added.
        value = dd_ext_superset(100, 200, PARAMS)
        assert value == pytest.approx(PARAMS.rho_d2 * 0.5)

    def test_equal_sizes_no_divergence(self):
        assert dd_ext_superset(500, 500, PARAMS) == 0.0

    def test_monotone_in_rewriting_size(self):
        values = [
            dd_ext_superset(100, size, PARAMS) for size in (100, 150, 300)
        ]
        assert values == sorted(values)

    def test_footnote5_weight_folding(self):
        # With (rho_d1, rho_d2) = (0, 1), the shortcut is exactly D2.
        folded = PARAMS.with_extent_weights(0.0, 1.0)
        assert dd_ext_superset(100, 400, folded) == pytest.approx(0.75)


class TestSubsetShortcut:
    def test_equals_general_formula(self):
        for original, rewriting in [(150, 100), (400, 400), (1000, 10)]:
            shortcut = dd_ext_subset(original, rewriting, PARAMS)
            general = dd_ext(
                ExtentNumbers(original, rewriting, rewriting), PARAMS
            )
            assert shortcut == pytest.approx(general)

    def test_only_d1_contributes(self):
        value = dd_ext_subset(200, 100, PARAMS)
        assert value == pytest.approx(PARAMS.rho_d1 * 0.5)

    def test_monotone_in_information_loss(self):
        values = [
            dd_ext_subset(100, size, PARAMS) for size in (100, 50, 10)
        ]
        assert values == sorted(values)

    def test_footnote6_weight_folding(self):
        folded = PARAMS.with_extent_weights(1.0, 0.0)
        assert dd_ext_subset(400, 100, folded) == pytest.approx(0.75)


class TestConsistencyWithExperiment4:
    def test_superset_chain_values(self):
        """V4/V5 of Table 4 are superset rewritings: the shortcut must
        reproduce their DD_ext column directly from the two sizes."""
        # |V| = js*|R1|*4000, |V4| = js*|R1|*5000 — sizes cancel to the
        # cardinality ratio.
        assert dd_ext_superset(4000, 5000, PARAMS) == pytest.approx(0.1)
        assert dd_ext_superset(4000, 6000, PARAMS) == pytest.approx(1 / 6)

    def test_subset_chain_values(self):
        """V1/V2 are subset rewritings."""
        assert dd_ext_subset(4000, 2000, PARAMS) == pytest.approx(0.25)
        assert dd_ext_subset(4000, 3000, PARAMS) == pytest.approx(0.125)
