"""Unit tests for the quality model (DD_attr, DD_ext, DD)."""

import pytest

from repro.esql.parser import parse_view
from repro.qc.params import TradeoffParameters
from repro.qc.quality import (
    assess_quality,
    dd_attr,
    dd_ext,
    dd_ext_d1,
    dd_ext_d2,
    exact_extent_numbers,
    interface_quality,
)
from repro.qc.view_size import ExtentNumbers
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.sync.rewriting import ExtentRelationship, Rewriting

PARAMS = TradeoffParameters()


class TestInterfaceQuality:
    """Example 3 of the paper: Q_V and DD_attr over Example 1's view."""

    @pytest.fixture
    def view(self):
        # V: A indispensable, B and C in category 1 (AD & AR true).
        return parse_view(
            "CREATE VIEW V AS SELECT A, B (AD = true, AR = true), "
            "C (AD = true, AR = true) FROM R WHERE R.A > 10"
        )

    def test_q_v_counts_weighted_categories(self, view):
        assert interface_quality(view, PARAMS) == pytest.approx(2 * 0.7)

    def test_category2_weighted_w2(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT A (AD = true), B (AD = true, AR = true) "
            "FROM R"
        )
        assert interface_quality(view, PARAMS) == pytest.approx(0.3 + 0.7)

    def test_dd_attr_example3_v1(self, view):
        # V1 keeps B (and the indispensable A): DD_attr = 0.5.
        v1 = view.dropping_select_item("C")
        assert dd_attr(view, v1, PARAMS) == pytest.approx(0.5)

    def test_dd_attr_example3_v2(self, view):
        # V2 keeps only A: DD_attr = 1.
        v2 = view.dropping_select_item("C").dropping_select_item("B")
        assert dd_attr(view, v2, PARAMS) == pytest.approx(1.0)

    def test_dd_attr_zero_when_all_indispensable(self):
        view = parse_view("CREATE VIEW V AS SELECT A, B FROM R")
        assert dd_attr(view, view, PARAMS) == 0.0

    def test_dd_attr_zero_for_full_preservation(self, view):
        assert dd_attr(view, view, PARAMS) == 0.0

    def test_replaced_attribute_keeps_its_category_weight(self, view):
        # Replacing the relation keeps output names, so no interface loss.
        replaced = view.replacing_relation("R", "T")
        assert dd_attr(view, replaced, PARAMS) == 0.0


class TestExtentDivergence:
    def test_d1_fraction_of_lost_tuples(self):
        numbers = ExtentNumbers(original=100, rewriting=80, overlap=60)
        assert dd_ext_d1(numbers) == pytest.approx(0.4)

    def test_d2_fraction_of_surplus(self):
        numbers = ExtentNumbers(original=100, rewriting=80, overlap=60)
        assert dd_ext_d2(numbers) == pytest.approx(0.25)

    def test_equal_extents_no_divergence(self):
        numbers = ExtentNumbers(100, 100, 100)
        assert dd_ext(numbers, PARAMS) == 0.0

    def test_empty_original_yields_zero_d1(self):
        assert dd_ext_d1(ExtentNumbers(0, 50, 0)) == 0.0

    def test_empty_rewriting_yields_zero_d2(self):
        assert dd_ext_d2(ExtentNumbers(50, 0, 0)) == 0.0

    def test_weights_blend(self):
        numbers = ExtentNumbers(100, 100, 50)  # D1 = D2 = 0.5
        lopsided = PARAMS.with_extent_weights(1.0, 0.0)
        assert dd_ext(numbers, lopsided) == pytest.approx(0.5)
        assert dd_ext(numbers, PARAMS) == pytest.approx(0.5)

    def test_experiment4_values(self):
        """Table 4's DD_ext column from its extent numbers."""
        # V1: overlap 2000 of original 4000, no surplus.
        assert dd_ext(
            ExtentNumbers(4000, 2000, 2000), PARAMS
        ) == pytest.approx(0.25)
        # V4: superset 5000, no loss.
        assert dd_ext(
            ExtentNumbers(4000, 5000, 4000), PARAMS
        ) == pytest.approx(0.1)


class TestTotalDivergence:
    def test_eq20_blend(self):
        view = parse_view(
            "CREATE VIEW V AS SELECT A, B (AD = true, AR = true) FROM R"
        )
        rewriting = Rewriting(
            view, view.dropping_select_item("B"), (), ExtentRelationship.EQUAL
        )
        numbers = ExtentNumbers(100, 100, 100)
        assessment = assess_quality(rewriting, PARAMS, numbers)
        assert assessment.dd_attr == 1.0
        assert assessment.dd_ext == 0.0
        assert assessment.dd == pytest.approx(0.7)

    def test_breakdown_is_consistent(self):
        view = parse_view("CREATE VIEW V AS SELECT A FROM R")
        rewriting = Rewriting(view, view)
        numbers = ExtentNumbers(100, 200, 50)
        a = assess_quality(rewriting, PARAMS, numbers)
        assert a.dd == pytest.approx(
            PARAMS.rho_attr * a.dd_attr + PARAMS.rho_ext * a.dd_ext
        )
        assert a.dd_ext == pytest.approx(
            PARAMS.rho_d1 * a.dd_ext_d1 + PARAMS.rho_d2 * a.dd_ext_d2
        )


class TestExactPath:
    def test_exact_numbers_from_materialized_extents(self):
        original = parse_view("CREATE VIEW V AS SELECT R.A, R.B FROM R")
        new = parse_view("CREATE VIEW V AS SELECT T.A (AD = true) FROM T")
        rewriting = Rewriting(original, new, (), ExtentRelationship.UNKNOWN)
        old_relations = {
            "R": Relation(Schema("R", ["A", "B"]), [(1, 1), (2, 2), (3, 3)])
        }
        new_relations = {
            "T": Relation(Schema("T", ["A"]), [(1,), (2,), (9,)])
        }
        numbers = exact_extent_numbers(rewriting, old_relations, new_relations)
        assert numbers.original == 3  # distinct A-projections of V
        assert numbers.rewriting == 3
        assert numbers.overlap == 2  # {1, 2}

    def test_exact_numbers_duplicates_removed(self):
        original = parse_view("CREATE VIEW V AS SELECT R.A FROM R")
        rewriting = Rewriting(original, original)
        relations = {
            "R": Relation(Schema("R", ["A"]), [(1,), (1,), (2,)])
        }
        numbers = exact_extent_numbers(rewriting, relations, relations)
        assert numbers.original == 2
        assert numbers.overlap == 2

    def test_disjoint_interfaces_full_divergence(self):
        original = parse_view("CREATE VIEW V AS SELECT R.A (AD = true) FROM R")
        new = parse_view("CREATE VIEW V AS SELECT T.B (AD = true) FROM T")
        rewriting = Rewriting(original, new)
        numbers = exact_extent_numbers(
            rewriting,
            {"R": Relation(Schema("R", ["A"]), [(1,)])},
            {"T": Relation(Schema("T", ["B"]), [(5,)])},
        )
        assert numbers.overlap == 0
        assert dd_ext(numbers, PARAMS) == 1.0
