"""Unit tests for QC trade-off parameters."""

import pytest

from repro.errors import EvaluationError
from repro.qc.params import (
    DEFAULT_PARAMETERS,
    EXPERIMENT4_CASES,
    TradeoffParameters,
)


class TestDefaults:
    def test_paper_defaults(self):
        p = DEFAULT_PARAMETERS
        assert (p.w1, p.w2) == (0.7, 0.3)
        assert (p.rho_d1, p.rho_d2) == (0.5, 0.5)
        assert (p.rho_attr, p.rho_ext) == (0.7, 0.3)
        assert (p.cost_m, p.cost_t, p.cost_io) == (0.1, 0.7, 0.2)
        assert (p.rho_quality, p.rho_cost) == (0.9, 0.1)

    def test_w1_exceeds_w2_by_default(self):
        # The EVE favour-replaceable property (Sec. 5.2).
        assert DEFAULT_PARAMETERS.w1 > DEFAULT_PARAMETERS.w2

    def test_experiment4_cases(self):
        labels = [label for label, _ in EXPERIMENT4_CASES]
        weights = [p.rho_quality for _, p in EXPERIMENT4_CASES]
        assert labels == ["Case 1", "Case 2", "Case 3"]
        assert weights == [0.9, 0.75, 0.5]


class TestValidation:
    def test_pair_must_sum_to_one(self):
        with pytest.raises(EvaluationError):
            TradeoffParameters(rho_d1=0.5, rho_d2=0.6)
        with pytest.raises(EvaluationError):
            TradeoffParameters(rho_attr=0.2, rho_ext=0.2)
        with pytest.raises(EvaluationError):
            TradeoffParameters(rho_quality=1.0, rho_cost=0.5)

    def test_unit_range_enforced(self):
        with pytest.raises(EvaluationError):
            TradeoffParameters(w1=1.5)

    def test_negative_unit_price_rejected(self):
        with pytest.raises(EvaluationError):
            TradeoffParameters(cost_t=-1)


class TestVariants:
    def test_with_quality_weight(self):
        p = DEFAULT_PARAMETERS.with_quality_weight(0.6)
        assert p.rho_quality == 0.6
        assert p.rho_cost == pytest.approx(0.4)

    def test_with_interface_weights(self):
        p = DEFAULT_PARAMETERS.with_interface_weights(0.2, 0.9)
        assert (p.w1, p.w2) == (0.2, 0.9)

    def test_with_extent_weights(self):
        p = DEFAULT_PARAMETERS.with_extent_weights(1.0, 0.0)
        assert (p.rho_d1, p.rho_d2) == (1.0, 0.0)

    def test_with_divergence_weights(self):
        p = DEFAULT_PARAMETERS.with_divergence_weights(0.5, 0.5)
        assert (p.rho_attr, p.rho_ext) == (0.5, 0.5)

    def test_with_unit_prices(self):
        p = DEFAULT_PARAMETERS.with_unit_prices(1, 2, 3)
        assert (p.cost_m, p.cost_t, p.cost_io) == (1, 2, 3)

    def test_variants_leave_original_untouched(self):
        DEFAULT_PARAMETERS.with_quality_weight(0.1)
        assert DEFAULT_PARAMETERS.rho_quality == 0.9
