"""Tests for the exception hierarchy and the public package surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_every_error_derives_from_repro_error(self):
        names = [
            "SchemaError",
            "UnknownAttributeError",
            "UnknownRelationError",
            "TypeMismatchError",
            "ParseError",
            "ConstraintError",
            "SynchronizationError",
            "ViewUndefinedError",
            "EvaluationError",
            "MaintenanceError",
            "WorkspaceError",
            "ConfigurationError",
        ]
        for name in names:
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_unknown_attribute_carries_context(self):
        error = errors.UnknownAttributeError("A", "R")
        assert error.attribute == "A"
        assert error.schema_name == "R"
        assert "A" in str(error) and "R" in str(error)

    def test_unknown_relation_carries_context(self):
        error = errors.UnknownRelationError("R", "the MKB")
        assert error.relation == "R"
        assert "the MKB" in str(error)

    def test_parse_error_position_rendering(self):
        with_position = errors.ParseError("bad token", line=3, column=7)
        assert "line 3" in str(with_position)
        without = errors.ParseError("bad token")
        assert "line" not in str(without)

    def test_view_undefined_reason(self):
        error = errors.ViewUndefinedError("V", "no replacement found")
        assert error.view_name == "V"
        assert "no replacement found" in str(error)

    def test_catching_the_base_class_works_across_subsystems(self):
        from repro.relational import Schema

        with pytest.raises(errors.ReproError):
            Schema("R", ["A", "A"])


#: The documented top-level surface, verbatim.  A new public name must
#: be added BOTH to ``repro.__all__`` and here — the drift test below
#: fails on any one-sided change, so the package cannot silently grow
#: (or lose) API.
DOCUMENTED_EXPORTS = [
    "BatchScheduled",
    "CacheInvalidated",
    "ConfigurationError",
    "DegradedToFirstLegal",
    "EVESystem",
    "EngineConfig",
    "Evaluation",
    "EventBus",
    "MaintenanceConfig",
    "MaintenanceFlush",
    "QCModel",
    "ScheduleConfig",
    "SearchConfig",
    "ShardRebalanced",
    "SynchronizationDeferred",
    "SynchronizationRecord",
    "SynchronizationResult",
    "SystemConfig",
    "SystemEvent",
    "SystemReport",
    "TradeoffParameters",
    "ViewMaintained",
    "ViewSynchronized",
    "WorkerRecycled",
    "__version__",
]


class TestPublicSurface:
    def test_top_level_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_all_matches_documented_surface_exactly(self):
        assert repro.__all__ == DOCUMENTED_EXPORTS

    def test_all_is_sorted(self):
        assert repro.__all__ == sorted(repro.__all__)

    def test_no_undocumented_public_classes(self):
        # Anything importable from the package root that looks public
        # (a class or function defined in repro.*) must be in __all__ —
        # imports used for re-export bookkeeping count as public.
        import inspect

        undocumented = [
            name
            for name, item in vars(repro).items()
            if not name.startswith("_")
            and (inspect.isclass(item) or inspect.isfunction(item))
            and (item.__module__ or "").startswith("repro")
            and name not in repro.__all__
        ]
        assert undocumented == []

    def test_presets_reachable_from_exported_config(self):
        for preset in ("reference", "fast", "bounded"):
            assert callable(getattr(repro.SystemConfig, preset))

    def test_subpackage_all_lists_resolve(self):
        import repro.esql
        import repro.maintenance
        import repro.misd
        import repro.qc
        import repro.relational
        import repro.space
        import repro.sync
        import repro.workloadgen

        for module in [
            repro.esql, repro.maintenance, repro.misd, repro.qc,
            repro.relational, repro.space, repro.sync, repro.workloadgen,
        ]:
            for name in module.__all__:
                assert getattr(module, name) is not None, (
                    f"{module.__name__}.{name} missing"
                )

    def test_every_public_item_has_a_docstring(self):
        import inspect

        import repro.qc
        import repro.sync

        for module in (repro.qc, repro.sync):
            for name in module.__all__:
                item = getattr(module, name)
                if inspect.isclass(item) or inspect.isfunction(item):
                    assert item.__doc__, f"{module.__name__}.{name} undocumented"
