"""Unit tests for the information space (registration, fan-out, changes)."""

import pytest

from repro.errors import UnknownRelationError, WorkspaceError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.space.changes import AddAttribute, AddRelation, DeleteRelation
from repro.space.space import InformationSpace


@pytest.fixture
def space():
    sp = InformationSpace()
    sp.add_source("IS1")
    sp.add_source("IS2")
    sp.register_relation("IS1", Relation(Schema("R", ["A", "B"]), [(1, 2)]))
    sp.register_relation("IS2", Relation(Schema("S", ["A", "C"]), [(1, 3)]))
    return sp


class TestRegistration:
    def test_duplicate_source_rejected(self, space):
        with pytest.raises(WorkspaceError):
            space.add_source("IS1")

    def test_registration_fills_mkb(self, space):
        assert "R" in space.mkb
        assert space.mkb.owner("R") == "IS1"

    def test_owner_of(self, space):
        assert space.owner_of("S").name == "IS2"
        with pytest.raises(UnknownRelationError):
            space.owner_of("Z")

    def test_relations_snapshot(self, space):
        assert set(space.relations()) == {"R", "S"}

    def test_has_relation(self, space):
        assert space.has_relation("R")
        assert not space.has_relation("Z")


class TestDataUpdates:
    def test_insert_routes_and_notifies(self, space):
        received = []
        space.on_data_update(received.append)
        update = space.insert("R", (5, 6))
        assert space.relation("R").cardinality == 2
        assert received == [update]

    def test_delete_routes_and_notifies(self, space):
        received = []
        space.on_data_update(received.append)
        space.delete("R", (1, 2))
        assert space.relation("R").cardinality == 0
        assert len(received) == 1


class TestCapabilityChanges:
    def test_delete_relation_updates_source_and_mkb(self, space):
        received = []
        space.on_capability_change(received.append)
        change = space.delete_relation("R")
        assert not space.has_relation("R")
        assert "R" not in space.mkb
        assert received == [change]

    def test_delete_unknown_relation(self, space):
        with pytest.raises(UnknownRelationError):
            space.apply_change(DeleteRelation("IS1", "Zzz"))

    def test_delete_attribute(self, space):
        space.delete_attribute("R", "A")
        assert space.relation("R").schema.attribute_names == ("B",)
        assert space.mkb.schema("R").attribute_names == ("B",)

    def test_rename_relation(self, space):
        space.rename_relation("R", "R2")
        assert space.has_relation("R2")
        assert "R2" in space.mkb and "R" not in space.mkb

    def test_rename_attribute(self, space):
        space.rename_attribute("R", "A", "A2")
        assert space.relation("R").schema.attribute_names == ("A2", "B")
        assert space.mkb.schema("R").attribute_names == ("A2", "B")

    def test_add_relation(self, space):
        new = Relation(Schema("T", ["X"]), [(1,)])
        space.apply_change(AddRelation("IS1", "T", new))
        assert space.has_relation("T")
        assert space.mkb.owner("T") == "IS1"

    def test_add_attribute(self, space):
        space.apply_change(
            AddAttribute("IS1", "R", new_attribute=Attribute("D"), default=0)
        )
        assert space.relation("R").rows == [(1, 2, 0)]
        assert "D" in space.mkb.schema("R")

    def test_listener_sees_post_change_state(self, space):
        observed = {}

        def listener(change):
            observed["has_r"] = space.has_relation("R")

        space.on_capability_change(listener)
        space.delete_relation("R")
        assert observed["has_r"] is False

    def test_mkb_consistency_preserved_across_changes(self, space):
        space.mkb.add_containment("R", "S", ["A"])
        space.delete_attribute("R", "A")
        space.rename_relation("S", "S2")
        assert space.mkb.check_consistency() == []
