"""Unit tests for data-update notifications."""

from repro.space.updates import DataUpdate, UpdateKind


class TestDataUpdate:
    def test_insert_classification(self):
        update = DataUpdate("IS1", "R", UpdateKind.INSERT, (1, 2))
        assert update.is_insert
        assert not update.is_delete

    def test_delete_classification(self):
        update = DataUpdate("IS1", "R", UpdateKind.DELETE, (1, 2))
        assert update.is_delete
        assert not update.is_insert

    def test_describe_mentions_everything(self):
        update = DataUpdate("IS1", "R", UpdateKind.INSERT, (1, 2))
        text = update.describe()
        assert "insert" in text
        assert "(1, 2)" in text
        assert "IS1.R" in text

    def test_immutability_and_equality(self):
        a = DataUpdate("IS1", "R", UpdateKind.INSERT, (1,))
        b = DataUpdate("IS1", "R", UpdateKind.INSERT, (1,))
        assert a == b
        assert hash(a) == hash(b)

    def test_kind_rendering(self):
        assert str(UpdateKind.INSERT) == "insert"
        assert str(UpdateKind.DELETE) == "delete"
