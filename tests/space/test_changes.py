"""Unit tests for capability-change events."""

import pytest

from repro.relational.relation import Relation
from repro.relational.schema import Attribute, Schema
from repro.space.changes import (
    AddAttribute,
    AddRelation,
    DeleteAttribute,
    DeleteRelation,
    RenameAttribute,
    RenameRelation,
)


class TestConstruction:
    def test_delete_attribute_requires_attribute(self):
        with pytest.raises(ValueError):
            DeleteAttribute("IS1", "R")

    def test_rename_relation_requires_new_name(self):
        with pytest.raises(ValueError):
            RenameRelation("IS1", "R")

    def test_rename_attribute_requires_both_names(self):
        with pytest.raises(ValueError):
            RenameAttribute("IS1", "R", attribute="A")

    def test_add_relation_requires_instance(self):
        with pytest.raises(ValueError):
            AddRelation("IS1", "R")

    def test_add_attribute_requires_attribute(self):
        with pytest.raises(ValueError):
            AddAttribute("IS1", "R")


class TestSemantics:
    def test_delete_relation_affects_every_attribute(self):
        change = DeleteRelation("IS1", "R")
        assert change.removes_relation
        assert change.affects_attribute("anything")

    def test_delete_attribute_affects_only_its_attribute(self):
        change = DeleteAttribute("IS1", "R", "A")
        assert change.affects_attribute("A")
        assert not change.affects_attribute("B")
        assert not change.removes_relation

    def test_rename_attribute_affects_old_name(self):
        change = RenameAttribute("IS1", "R", "A", "A2")
        assert change.affects_attribute("A")
        assert not change.affects_attribute("A2")

    def test_add_changes_affect_nothing(self):
        add_rel = AddRelation("IS1", "R", Relation(Schema("R", ["A"])))
        add_attr = AddAttribute("IS1", "R", Attribute("B"))
        assert not add_rel.affects_attribute("A")
        assert not add_attr.affects_attribute("B")

    def test_describe_mentions_the_target(self):
        assert "R.A" in DeleteAttribute("IS1", "R", "A").describe()
        assert "R -> R2" in RenameRelation("IS1", "R", "R2").describe()
        assert "kind" not in DeleteRelation("IS1", "R").describe()
        assert DeleteRelation("IS1", "R").kind == "DeleteRelation"
