"""Unit tests for information sources and the wrapper query interface."""

import pytest

from repro.errors import MaintenanceError, WorkspaceError
from repro.esql.parser import parse_condition_clause
from repro.relational.expressions import Condition
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.space.source import InformationSource
from repro.space.updates import UpdateKind


def cond(*texts):
    return Condition(parse_condition_clause(t) for t in texts)


@pytest.fixture
def source():
    src = InformationSource("IS1")
    src.host(Relation(Schema("R", ["A", "B"]), [(1, 10), (2, 20)]))
    src.host(Relation(Schema("S", ["A", "C"]), [(1, 5), (3, 7)]))
    return src


class TestHosting:
    def test_name_required(self):
        with pytest.raises(WorkspaceError):
            InformationSource("")

    def test_host_and_offers(self, source):
        assert source.offers("R")
        assert not source.offers("Z")
        assert set(source.relation_names) == {"R", "S"}

    def test_host_empty(self, source):
        source.host_empty(Schema("T", ["X"]))
        assert source.relation("T").cardinality == 0


class TestDataUpdates:
    def test_insert_returns_notification(self, source):
        update = source.insert("R", (3, 30))
        assert update.source == "IS1"
        assert update.kind is UpdateKind.INSERT
        assert update.row == (3, 30)
        assert source.relation("R").cardinality == 3

    def test_delete_returns_notification(self, source):
        update = source.delete("R", (1, 10))
        assert update.is_delete
        assert source.relation("R").cardinality == 1

    def test_delete_missing_raises(self, source):
        with pytest.raises(MaintenanceError):
            source.delete("R", (9, 9))


class TestSingleSiteQuery:
    def test_join_with_local_relation(self, source):
        incoming = [{"Other.X": 1, "Other.A": 1}]
        condition = cond("Other.A = R.A")
        result = source.answer_single_site_query(incoming, ["R"], condition)
        assert len(result) == 1
        assert result[0]["R.B"] == 10

    def test_join_both_local_relations(self, source):
        incoming = [{"D.A": 1}]
        condition = cond("D.A = R.A", "R.A = S.A")
        result = source.answer_single_site_query(
            incoming, ["R", "S"], condition
        )
        assert len(result) == 1
        assert result[0]["S.C"] == 5

    def test_local_selection_applies(self, source):
        incoming = [{}]
        condition = cond("R.B > 15")
        result = source.answer_single_site_query(incoming, ["R"], condition)
        assert [b["R.A"] for b in result] == [2]

    def test_undecidable_clauses_are_deferred(self, source):
        # A clause referencing a not-yet-bound relation must not filter.
        incoming = [{}]
        condition = cond("R.A = Elsewhere.A")
        result = source.answer_single_site_query(incoming, ["R"], condition)
        assert len(result) == 2

    def test_empty_incoming_stays_empty(self, source):
        assert source.answer_single_site_query([], ["R"], cond("R.A > 0")) == []
